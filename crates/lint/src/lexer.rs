//! A spanned lexer and nesting-aware token tree for the analyzer.
//!
//! PR 2's scanner answered one question — "is this byte code, comment,
//! or literal?" — which is enough for line rules but not for dataflow.
//! The S-family rules (shared-state, RNG-stream, ordering-taint) need
//! to see *tokens* with positions and *nesting* (which `{...}` body a
//! `let` lives in), so this module lexes the source once into spanned
//! tokens and folds them into a delimiter tree. The line scanner in
//! [`crate::scanner`] is rebuilt on top of the same token stream, so
//! every rule — old and new — shares one lexical truth.
//!
//! Handled shapes (same contract the scanner documents): `//`-family
//! line comments, nested `/* */` block comments, `"..."` strings with
//! escapes and line continuations, raw strings `r"…"`/`r#"…"#` with any
//! number of hashes, byte and byte-raw strings, char and byte-char
//! literals, lifetimes (`'a` is a token, not an unterminated char), raw
//! identifiers (`r#match` lexes as plain tokens, not a raw string),
//! numbers with type suffixes and exponents, and single-char
//! punctuation. Multi-char operators are left as adjacent punct tokens:
//! the rules that care (`::`, `as *const`) match short sequences, which
//! keeps the lexer small and unambiguous.

/// What kind of token a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`let`, `fn`, `HashMap`, `r#match`'s `match`).
    Ident,
    /// Lifetime (`'a`, `'static`).
    Lifetime,
    /// Numeric literal (`1`, `1.5e-3`, `0xFF`, `42u64`).
    Num,
    /// String literal of any flavor (masked by the scanner; body kept here).
    Str,
    /// Char or byte-char literal.
    Char,
    /// Single punctuation character.
    Punct,
    /// Line or block comment; `text` holds the body without delimiters.
    Comment,
}

/// One lexed token with its source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Token kind.
    pub kind: TokKind,
    /// The token's spelling. Comments hold the body text (delimiters
    /// omitted, newlines kept); strings/chars hold the full literal.
    pub text: String,
    /// 0-based line of the token's first character.
    pub line: usize,
    /// 0-based character column of the token's first character.
    pub col: usize,
}

impl Token {
    /// True when this token is the identifier `word`.
    pub fn is_ident(&self, word: &str) -> bool {
        self.kind == TokKind::Ident && self.text == word
    }

    /// True when this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == 1 && self.text.starts_with(c)
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_ascii_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// Character cursor with line/column tracking.
struct Cursor {
    chars: Vec<char>,
    i: usize,
    line: usize,
    col: usize,
}

impl Cursor {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.i + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.i).copied()?;
        self.i += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 0;
        } else {
            self.col += 1;
        }
        Some(c)
    }
}

/// Lexes a whole source file into spanned tokens (comments included).
pub fn lex(src: &str) -> Vec<Token> {
    let mut cur = Cursor { chars: src.chars().collect(), i: 0, line: 0, col: 0 };
    let mut out = Vec::new();

    while let Some(c) = cur.peek(0) {
        let (line, col) = (cur.line, cur.col);
        if c.is_whitespace() {
            cur.bump();
            continue;
        }
        if c == '/' && cur.peek(1) == Some('/') {
            cur.bump();
            cur.bump();
            let mut body = String::new();
            while let Some(n) = cur.peek(0) {
                if n == '\n' {
                    break;
                }
                body.push(n);
                cur.bump();
            }
            out.push(Token { kind: TokKind::Comment, text: body, line, col });
            continue;
        }
        if c == '/' && cur.peek(1) == Some('*') {
            out.push(block_comment(&mut cur, line, col));
            continue;
        }
        // Raw/byte string prefixes (r", r#", br", b", b') and raw
        // identifiers (r#ident). A prefix letter glued to a preceding
        // identifier was already consumed by that identifier, so
        // reaching here with `r`/`b` means a genuine prefix position.
        if c == 'r' || c == 'b' {
            let mut j = 1;
            if c == 'b' && cur.peek(j) == Some('r') {
                j += 1;
            }
            let mut hashes = 0u32;
            while cur.peek(j) == Some('#') {
                hashes += 1;
                j += 1;
            }
            let is_raw = j > 1 || c == 'r';
            let raw_ident = c == 'r' && hashes == 1 && cur.peek(j).is_some_and(is_ident_start);
            if cur.peek(j) == Some('"') && is_raw && !raw_ident {
                if hashes == 0 && c == 'b' && j == 1 {
                    // b"..." — escapes apply, no hash fence.
                    out.push(string_literal(&mut cur, line, col, 1));
                } else {
                    out.push(raw_string(&mut cur, line, col, j, hashes));
                }
                continue;
            }
            if c == 'b' && cur.peek(1) == Some('\'') {
                cur.bump();
                out.push(char_literal(&mut cur, line, col, "b"));
                continue;
            }
            if raw_ident {
                // Skip the r# and lex the identifier proper.
                cur.bump();
                cur.bump();
            }
            // Fall through: plain identifier starting with r/b.
        }
        if c == '"' {
            out.push(string_literal(&mut cur, line, col, 0));
            continue;
        }
        if c == '\'' {
            // Char literal vs lifetime: a literal is '\x', or a single
            // char followed by a closing quote; anything else is 'life.
            let n1 = cur.peek(1);
            let n2 = cur.peek(2);
            if n1 == Some('\\') || (n1.is_some() && n2 == Some('\'')) {
                out.push(char_literal(&mut cur, line, col, ""));
            } else {
                let mut text = String::from('\'');
                cur.bump();
                while let Some(n) = cur.peek(0) {
                    if !is_ident_continue(n) {
                        break;
                    }
                    text.push(n);
                    cur.bump();
                }
                out.push(Token { kind: TokKind::Lifetime, text, line, col });
            }
            continue;
        }
        if is_ident_start(c) {
            let mut text = String::new();
            while let Some(n) = cur.peek(0) {
                if !is_ident_continue(n) {
                    break;
                }
                text.push(n);
                cur.bump();
            }
            out.push(Token { kind: TokKind::Ident, text, line, col });
            continue;
        }
        if c.is_ascii_digit() {
            out.push(number(&mut cur, line, col));
            continue;
        }
        cur.bump();
        out.push(Token { kind: TokKind::Punct, text: c.to_string(), line, col });
    }
    out
}

/// Consumes a nested block comment; `line`/`col` are the `/*` position.
fn block_comment(cur: &mut Cursor, line: usize, col: usize) -> Token {
    cur.bump();
    cur.bump();
    let mut depth = 1u32;
    let mut body = String::new();
    while let Some(c) = cur.peek(0) {
        if c == '*' && cur.peek(1) == Some('/') {
            cur.bump();
            cur.bump();
            depth -= 1;
            if depth == 0 {
                break;
            }
            continue;
        }
        if c == '/' && cur.peek(1) == Some('*') {
            cur.bump();
            cur.bump();
            depth += 1;
            continue;
        }
        body.push(c);
        cur.bump();
    }
    Token { kind: TokKind::Comment, text: body, line, col }
}

/// Consumes a `"`-delimited string (with escapes), including `prefix`
/// already-peeked lead characters (`b` for byte strings).
fn string_literal(cur: &mut Cursor, line: usize, col: usize, prefix: usize) -> Token {
    let mut text = String::new();
    for _ in 0..prefix {
        text.push(cur.bump().unwrap_or('\0'));
    }
    text.push(cur.bump().unwrap_or('\0')); // opening quote
    while let Some(c) = cur.peek(0) {
        if c == '\\' {
            text.push(c);
            cur.bump();
            if let Some(esc) = cur.peek(0) {
                text.push(esc);
                cur.bump();
            }
            continue;
        }
        text.push(c);
        cur.bump();
        if c == '"' {
            break;
        }
    }
    Token { kind: TokKind::Str, text, line, col }
}

/// Consumes a raw string whose prefix (`r`/`br` plus `hashes` `#`s) is
/// `prefix_len` chars long; the body ends at `"` followed by `hashes`
/// `#`s. Backslashes are not escapes inside raw strings.
fn raw_string(cur: &mut Cursor, line: usize, col: usize, prefix_len: usize, hashes: u32) -> Token {
    let mut text = String::new();
    for _ in 0..=prefix_len {
        // prefix plus the opening quote
        text.push(cur.bump().unwrap_or('\0'));
    }
    while let Some(c) = cur.peek(0) {
        if c == '"' {
            let fence_closed = (0..hashes as usize).all(|k| cur.peek(1 + k) == Some('#'));
            if fence_closed {
                for _ in 0..=hashes {
                    text.push(cur.bump().unwrap_or('\0'));
                }
                break;
            }
        }
        text.push(c);
        cur.bump();
    }
    Token { kind: TokKind::Str, text, line, col }
}

/// Consumes a char/byte-char literal; the opening `'` is still pending.
fn char_literal(cur: &mut Cursor, line: usize, col: usize, prefix: &str) -> Token {
    let mut text = String::from(prefix);
    text.push(cur.bump().unwrap_or('\0')); // opening quote
    while let Some(c) = cur.peek(0) {
        if c == '\\' {
            text.push(c);
            cur.bump();
            if let Some(esc) = cur.peek(0) {
                text.push(esc);
                cur.bump();
            }
            continue;
        }
        text.push(c);
        cur.bump();
        if c == '\'' {
            break;
        }
    }
    Token { kind: TokKind::Char, text, line, col }
}

/// Consumes a numeric literal: digits, `_`, radix/suffix letters, `.`
/// only when followed by a digit (so `1..2` stays two tokens), and an
/// exponent sign directly after `e`/`E`.
fn number(cur: &mut Cursor, line: usize, col: usize) -> Token {
    let mut text = String::new();
    while let Some(c) = cur.peek(0) {
        if is_ident_continue(c) {
            text.push(c);
            cur.bump();
            continue;
        }
        if c == '.' && cur.peek(1).is_some_and(|d| d.is_ascii_digit()) {
            text.push(c);
            cur.bump();
            continue;
        }
        if (c == '+' || c == '-')
            && text.ends_with(['e', 'E'])
            && cur.peek(1).is_some_and(|d| d.is_ascii_digit())
        {
            text.push(c);
            cur.bump();
            continue;
        }
        break;
    }
    Token { kind: TokKind::Num, text, line, col }
}

/// One node of the delimiter tree: a leaf token or a bracketed group.
#[derive(Debug, Clone)]
pub enum Tree {
    /// A non-delimiter token.
    Leaf(Token),
    /// A `(...)`, `[...]`, or `{...}` group.
    Group(Group),
}

/// A bracketed group of the token tree.
#[derive(Debug, Clone)]
pub struct Group {
    /// Opening delimiter: `(`, `[`, or `{`.
    pub delim: char,
    /// 0-based line of the opening delimiter.
    pub open_line: usize,
    /// Child nodes between the delimiters.
    pub children: Vec<Tree>,
}

fn close_of(open: char) -> char {
    match open {
        '(' => ')',
        '[' => ']',
        _ => '}',
    }
}

/// Folds a token stream into a nesting tree. Comments are dropped (they
/// carry no dataflow); a stray close delimiter stays a leaf and an
/// unclosed group is closed at end of input, so the tree is total over
/// malformed input.
pub fn token_tree(tokens: &[Token]) -> Vec<Tree> {
    let mut stack: Vec<Group> = Vec::new();
    let mut top: Vec<Tree> = Vec::new();

    let push = |stack: &mut Vec<Group>, top: &mut Vec<Tree>, node: Tree| match stack.last_mut() {
        Some(g) => g.children.push(node),
        None => top.push(node),
    };

    for tok in tokens {
        if tok.kind == TokKind::Comment {
            continue;
        }
        if tok.kind == TokKind::Punct {
            let c = tok.text.chars().next().unwrap_or(' ');
            if matches!(c, '(' | '[' | '{') {
                stack.push(Group { delim: c, open_line: tok.line, children: Vec::new() });
                continue;
            }
            if matches!(c, ')' | ']' | '}') {
                if stack.last().is_some_and(|g| close_of(g.delim) == c) {
                    // Guarded by the is_some_and directly above.
                    if let Some(g) = stack.pop() {
                        push(&mut stack, &mut top, Tree::Group(g));
                    }
                } else {
                    push(&mut stack, &mut top, Tree::Leaf(tok.clone()));
                }
                continue;
            }
        }
        push(&mut stack, &mut top, Tree::Leaf(tok.clone()));
    }
    while let Some(g) = stack.pop() {
        push(&mut stack, &mut top, Tree::Group(g));
    }
    top
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_numbers_puncts() {
        let got = kinds("let x = 1.5e-3 + 0xFF_u64;");
        assert_eq!(
            got,
            vec![
                (TokKind::Ident, "let".into()),
                (TokKind::Ident, "x".into()),
                (TokKind::Punct, "=".into()),
                (TokKind::Num, "1.5e-3".into()),
                (TokKind::Punct, "+".into()),
                (TokKind::Num, "0xFF_u64".into()),
                (TokKind::Punct, ";".into()),
            ]
        );
    }

    #[test]
    fn ranges_do_not_swallow_dots() {
        let got = kinds("for i in 1..20 {}");
        assert!(got.contains(&(TokKind::Num, "1".into())));
        assert!(got.contains(&(TokKind::Num, "20".into())));
        assert_eq!(got.iter().filter(|(k, t)| *k == TokKind::Punct && t == ".").count(), 2);
    }

    #[test]
    fn comments_carry_bodies_and_positions() {
        let toks = lex("a // tail\n/* multi\nline */ b");
        assert_eq!(toks[1].kind, TokKind::Comment);
        assert_eq!(toks[1].text, " tail");
        assert_eq!(toks[1].line, 0);
        assert_eq!(toks[2].kind, TokKind::Comment);
        assert_eq!(toks[2].text, " multi\nline ");
        assert!(toks[3].is_ident("b"));
        assert_eq!(toks[3].line, 2);
    }

    #[test]
    fn nested_block_comment_is_one_token() {
        let toks = lex("/* outer /* inner */ still */ code");
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[0].kind, TokKind::Comment);
        assert!(toks[1].is_ident("code"));
    }

    #[test]
    fn raw_strings_and_raw_identifiers() {
        let toks = lex("r##\"body \"# fake\"## done r#match");
        assert_eq!(toks[0].kind, TokKind::Str);
        assert!(toks[0].text.contains("body") && toks[0].text.contains("fake"));
        assert!(toks[1].is_ident("done"));
        assert!(toks[2].is_ident("match"), "raw identifier lexes as its bare name");
    }

    #[test]
    fn char_vs_lifetime() {
        let toks = lex("fn f<'a>(x: &'a str) { let c = '}'; let s = '\\n'; }");
        let lifetimes: Vec<_> =
            toks.iter().filter(|t| t.kind == TokKind::Lifetime).map(|t| t.text.clone()).collect();
        assert_eq!(lifetimes, vec!["'a", "'a"]);
        assert_eq!(toks.iter().filter(|t| t.kind == TokKind::Char).count(), 2);
    }

    #[test]
    fn byte_literals() {
        let toks = lex("let a = b\"bytes\"; let c = b'x'; let r = br#\"raw\"#;");
        assert_eq!(toks.iter().filter(|t| t.kind == TokKind::Str).count(), 2);
        assert_eq!(toks.iter().filter(|t| t.kind == TokKind::Char).count(), 1);
    }

    #[test]
    fn columns_track_chars() {
        let toks = lex("ab cd");
        assert_eq!((toks[0].line, toks[0].col), (0, 0));
        assert_eq!((toks[1].line, toks[1].col), (0, 3));
    }

    #[test]
    fn tree_nests_and_survives_imbalance() {
        let toks = lex("fn f(a: u32) { g([1, 2]); }");
        let tree = token_tree(&toks);
        // fn, f, (..), {..}
        assert_eq!(tree.len(), 4);
        match &tree[3] {
            Tree::Group(g) => {
                assert_eq!(g.delim, '{');
                assert!(g.children.iter().any(|n| matches!(n, Tree::Group(p) if p.delim == '(')));
            }
            other => panic!("expected body group, got {other:?}"),
        }
        // Stray close and unclosed open both survive.
        let broken = token_tree(&lex(") } ( fn"));
        assert_eq!(broken.len(), 3);
    }
}
