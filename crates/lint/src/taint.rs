//! The S-family shard-safety rules: token-sequence checks plus an
//! intraprocedural **ordering-taint** dataflow pass over the token tree.
//!
//! The engine's whole determinism story rests on the `(t_ns, seq,
//! stage)` ordering key: every identity gate (wheel-vs-heap,
//! fused-vs-unfused, serial-vs-parallel, the future sharded
//! epoch-barrier merge) compares runs that must order events
//! identically. Three things can silently break that before any test
//! notices:
//!
//! - **S1 — shared mutable state** reachable from dispatch paths
//!   (`static mut`, `RefCell`/`Cell`/`UnsafeCell`, lock-guarded cells).
//!   Once two shards race on it, event order depends on scheduling.
//! - **S2 — RNG outside a seed-derived stream** (`thread_rng`,
//!   `RandomState`, `DefaultHasher`, entropy seeding). Every draw must
//!   go through `apples-rng`'s explicit streams or replay dies.
//! - **S3 — ordering taint**: a value derived from a wall-clock read,
//!   hash-iteration order, or a pointer/address cast flowing into
//!   `t_ns`, `seq`, or a wheel-slot computation. This is the dataflow
//!   rule: the *source* may be fine on its own (an allocator address is
//!   harmless until it becomes a sort key), so the pass tracks
//!   function-local taint from sources through `let` bindings, `for`
//!   patterns, and assignments into ordering sinks.
//!
//! The pass is deliberately intraprocedural and flow-insensitive (a
//! fixpoint over bindings inside one `fn` body): that is cheap, has no
//! false negatives for the single-function mutations that matter
//! (inserting `Instant::now`, a `HashMap` walk, or `&x as *const _ as
//! usize` next to the ordering key), and — measured on this workspace —
//! no false positives, because legitimate engine code never lets those
//! sources near the key at all.

use crate::lexer::{Group, TokKind, Token, Tree};
use std::collections::BTreeMap;

/// A finding produced by the token-tree rules (fed through the engine's
/// suppression machinery like any line rule).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TreeFinding {
    /// Rule id (`S1`, `S2`, `S3`).
    pub rule: &'static str,
    /// 0-based source line.
    pub line: usize,
    /// What was found.
    pub message: String,
}

/// Interior-mutability / shared-mutable-state types S1 rejects on the
/// engine crate: anything that lets two call sites mutate one value
/// without the borrow checker serializing them in source order.
const S1_SHARED_MUTABLE: &[&str] =
    &["RefCell", "Cell", "UnsafeCell", "OnceCell", "OnceLock", "Mutex", "RwLock", "LazyLock"];

/// Blocking rendezvous primitives S1 calls out as their own class: the
/// epoch-barrier shard runtime (DESIGN.md §12) is the one sanctioned
/// user, and every use site must carry a reasoned allow naming that
/// contract. The findings stay deny-tier and fingerprinted like any
/// other — the *allow*, not the rule, is what sanctions a site, so the
/// audit trail records each barrier individually instead of
/// blanket-exempting the type.
const S1_SYNC_RENDEZVOUS: &[&str] = &["Barrier", "Condvar"];

/// RNG / hashing entry points whose output is not a pure function of a
/// checked-in seed.
const S2_UNSEEDED: &[&str] = &[
    "thread_rng",
    "from_entropy",
    "getrandom",
    "RandomState",
    "DefaultHasher",
    "OsRng",
    "StdRng",
    "SmallRng",
];

/// Names an ordering value may be bound to: writes of tainted data into
/// these are the S3 sinks.
const S3_SINKS: &[&str] = &["t_ns", "seq", "slot", "time_ns", "when_ns"];

/// Calls whose arguments feed the scheduler's ordering key: a tainted
/// argument here is a sink hit even without a named binding.
const S3_SINK_CALLS: &[&str] = &["push", "mint", "schedule"];

/// Where each rule family applies.
fn s1_in_scope(rel: &str) -> bool {
    rel.starts_with("crates/simnet/src/")
}

fn s2_in_scope(rel: &str) -> bool {
    // The seeded-RNG crate implements the sanctioned streams; everything
    // else (engine, workloads, harness, tools) must draw through them.
    !rel.starts_with("crates/rng/src/")
}

fn s3_in_scope(rel: &str) -> bool {
    rel.starts_with("crates/simnet/src/")
}

/// Runs every S rule over one file's token stream. `test_lines[i]` says
/// whether 0-based line `i` is test code (S rules skip tests, like the
/// line rules).
pub fn analyze(rel: &str, tokens: &[Token], test_lines: &[bool]) -> Vec<TreeFinding> {
    let mut out = Vec::new();
    let in_test = |line: usize| -> bool { test_lines.get(line).copied().unwrap_or(false) };

    let code: Vec<&Token> =
        tokens.iter().filter(|t| t.kind != TokKind::Comment && !in_test(t.line)).collect();

    if s1_in_scope(rel) {
        check_s1(&code, &mut out);
    }
    if s2_in_scope(rel) {
        check_s2(&code, &mut out);
    }
    if s3_in_scope(rel) {
        let tree = crate::lexer::token_tree(tokens);
        let mut fns = Vec::new();
        collect_fn_items(&tree, &mut fns);
        for item in fns {
            if !in_test(item.body.open_line) {
                taint_fn(&item, &mut out);
            }
        }
    }

    out.sort_by(|a, b| {
        (a.line, a.rule, a.message.as_str()).cmp(&(b.line, b.rule, b.message.as_str()))
    });
    out.dedup();
    out
}

/// S1: `static mut` and interior-mutability cells in the engine crate.
fn check_s1(code: &[&Token], out: &mut Vec<TreeFinding>) {
    for pair in code.windows(2) {
        if pair[0].is_ident("static") && pair[1].is_ident("mut") {
            out.push(TreeFinding {
                rule: "S1",
                line: pair[0].line,
                message: "`static mut` shared state in the engine crate: a sharded dispatch \
                          path racing on it makes event order schedule-dependent"
                    .to_owned(),
            });
        }
    }
    for tok in code {
        if tok.kind == TokKind::Ident && S1_SHARED_MUTABLE.contains(&tok.text.as_str()) {
            out.push(TreeFinding {
                rule: "S1",
                line: tok.line,
                message: format!(
                    "shared-mutable cell `{}` in the engine crate: interior mutability hides \
                     writes from the ordering analysis; thread state through `&mut` instead",
                    tok.text
                ),
            });
        } else if tok.kind == TokKind::Ident && S1_SYNC_RENDEZVOUS.contains(&tok.text.as_str()) {
            out.push(TreeFinding {
                rule: "S1",
                line: tok.line,
                message: format!(
                    "blocking rendezvous `{}` in the engine crate: only the epoch-barrier \
                     shard runtime may block dispatch, and each use site must carry a \
                     reasoned allow naming that contract (DESIGN.md §12)",
                    tok.text
                ),
            });
        }
    }
}

/// S2: RNG/hashing that is not a pure function of a checked-in seed.
fn check_s2(code: &[&Token], out: &mut Vec<TreeFinding>) {
    for tok in code {
        if tok.kind == TokKind::Ident && S2_UNSEEDED.contains(&tok.text.as_str()) {
            out.push(TreeFinding {
                rule: "S2",
                line: tok.line,
                message: format!(
                    "`{}` draws outside a seed-derived stream: every random value must come \
                     from apples-rng so runs replay from `(seed, spec)` alone",
                    tok.text
                ),
            });
        }
    }
}

/// One `fn` item found in the tree: its parameter group (taint can be
/// seeded by a parameter whose *type* names a source, e.g. `m:
/// &HashMap<..>`) and its body group.
struct FnItem<'t> {
    params: Option<&'t Group>,
    body: &'t Group,
}

/// Collects every `fn` item in the tree (methods inside `impl` blocks
/// included): after a `fn` ident, the first `(` sibling group is the
/// parameter list and the first `{` sibling group the body — unless a
/// `;` leaf ends the item first (trait method signatures have no body).
fn collect_fn_items<'t>(nodes: &'t [Tree], out: &mut Vec<FnItem<'t>>) {
    for (i, node) in nodes.iter().enumerate() {
        match node {
            Tree::Group(g) => collect_fn_items(&g.children, out),
            Tree::Leaf(tok) if tok.is_ident("fn") => {
                let mut params = None;
                for follower in &nodes[i + 1..] {
                    match follower {
                        Tree::Leaf(t) if t.is_punct(';') => break,
                        Tree::Group(g) if g.delim == '(' && params.is_none() => params = Some(g),
                        Tree::Group(g) if g.delim == '{' => {
                            out.push(FnItem { params, body: g });
                            // Its nested fns are found by the recursion
                            // over this same group when the outer loop
                            // reaches it.
                            break;
                        }
                        _ => {}
                    }
                }
            }
            Tree::Leaf(_) => {}
        }
    }
}

/// A flattened body token: either a real token or a group boundary
/// (kept so statement scanning can see `{`/`(` structure).
#[derive(Debug, Clone)]
enum Flat {
    Tok(Token),
    Open(char, usize),
    Close(usize),
}

impl Flat {
    fn line(&self) -> usize {
        match self {
            Flat::Tok(t) => t.line,
            Flat::Open(_, l) | Flat::Close(l) => *l,
        }
    }

    fn ident(&self) -> Option<&str> {
        match self {
            Flat::Tok(t) if t.kind == TokKind::Ident => Some(&t.text),
            _ => None,
        }
    }

    fn is_punct(&self, c: char) -> bool {
        match self {
            Flat::Tok(t) => t.is_punct(c),
            _ => false,
        }
    }
}

fn flatten(g: &Group, out: &mut Vec<Flat>) {
    for node in &g.children {
        match node {
            Tree::Leaf(t) => out.push(Flat::Tok(t.clone())),
            Tree::Group(inner) => {
                out.push(Flat::Open(inner.delim, inner.open_line));
                flatten(inner, out);
                out.push(Flat::Close(inner.open_line));
            }
        }
    }
}

/// The taint source matched at a position, if any: `(source kind,
/// tokens consumed)`.
fn source_at(flat: &[Flat], i: usize) -> Option<(&'static str, usize)> {
    match flat[i].ident()? {
        "SystemTime" => Some(("a wall-clock read", 1)),
        "Instant"
            if flat.get(i + 1).is_some_and(|t| t.is_punct(':'))
                && flat.get(i + 2).is_some_and(|t| t.is_punct(':'))
                && flat.get(i + 3).and_then(Flat::ident) == Some("now") =>
        {
            Some(("a wall-clock read", 4))
        }
        "as_ptr" | "as_mut_ptr" => Some(("a pointer/address cast", 1)),
        "HashMap" | "HashSet" => Some(("hash-iteration order", 1)),
        "as" if flat.get(i + 1).is_some_and(|t| t.is_punct('*'))
            && matches!(flat.get(i + 2).and_then(Flat::ident), Some("const") | Some("mut")) =>
        {
            Some(("a pointer/address cast", 3))
        }
        _ => None,
    }
}

/// True when the half-open token range carries taint: it contains a
/// source pattern or mentions an already-tainted name.
fn span_tainted(
    flat: &[Flat],
    range: std::ops::Range<usize>,
    tainted: &BTreeMap<String, &'static str>,
) -> Option<&'static str> {
    let mut i = range.start;
    while i < range.end {
        if let Some((kind, _consumed)) = source_at(flat, i) {
            return Some(kind);
        }
        if let Some(name) = flat[i].ident() {
            if let Some(kind) = tainted.get(name) {
                return Some(kind);
            }
        }
        i += 1;
    }
    None
}

/// Scans one statement-ish span `start..end` (exclusive of the
/// terminator) for `let` / `for` / assignment bindings, updating the
/// taint set and recording sink hits.
struct BodyPass<'f> {
    flat: &'f [Flat],
    tainted: BTreeMap<String, &'static str>,
    findings: Vec<(usize, String)>,
}

impl BodyPass<'_> {
    /// One fixpoint iteration; returns true when the taint set grew.
    fn iterate(&mut self) -> bool {
        let before = self.tainted.len();
        self.scan_lets();
        self.scan_fors();
        self.scan_assigns();
        self.tainted.len() > before
    }

    /// `let <pat>[: ty] = <rhs>;`
    fn scan_lets(&mut self) {
        let flat = self.flat;
        let mut i = 0;
        while i < flat.len() {
            if flat[i].ident() != Some("let") {
                i += 1;
                continue;
            }
            // Pattern idents run until `:` or `=` (or `;` = no init).
            let mut names = Vec::new();
            let mut j = i + 1;
            let mut eq = None;
            while j < flat.len() {
                if flat[j].is_punct('=') && !flat.get(j + 1).is_some_and(|t| t.is_punct('=')) {
                    eq = Some(j);
                    break;
                }
                if flat[j].is_punct(':') || flat[j].is_punct(';') {
                    break;
                }
                if let Some(name) = flat[j].ident() {
                    if !matches!(name, "mut" | "ref") {
                        names.push(name.to_owned());
                    }
                }
                j += 1;
            }
            // Skip over a type annotation to the `=` if we stopped at `:`.
            if eq.is_none() && j < flat.len() && flat[j].is_punct(':') {
                let mut k = j + 1;
                while k < flat.len() && !flat[k].is_punct('=') && !flat[k].is_punct(';') {
                    k += 1;
                }
                if k < flat.len() && flat[k].is_punct('=') {
                    eq = Some(k);
                }
            }
            let Some(eq) = eq else {
                i = j + 1;
                continue;
            };
            let end = stmt_end(flat, eq + 1);
            if let Some(kind) = span_tainted(flat, eq + 1..end, &self.tainted) {
                for name in &names {
                    self.tainted.insert(name.clone(), kind);
                    if S3_SINKS.contains(&name.as_str()) {
                        self.findings.push((
                            flat[i].line(),
                            format!(
                                "ordering key `{name}` is derived from {kind}: the `(t_ns, seq, \
                                 stage)` order must be a pure function of the seeded simulation"
                            ),
                        ));
                    }
                }
            }
            i = end;
        }
    }

    /// `for <pat> in <expr> {`
    fn scan_fors(&mut self) {
        let flat = self.flat;
        let mut i = 0;
        while i < flat.len() {
            if flat[i].ident() != Some("for") {
                i += 1;
                continue;
            }
            let mut names = Vec::new();
            let mut j = i + 1;
            while j < flat.len() && flat[j].ident() != Some("in") {
                if let Some(name) = flat[j].ident() {
                    if name != "mut" {
                        names.push(name.to_owned());
                    }
                }
                // A `for` with no `in` before a brace/semicolon (or far
                // away) is an `impl Trait for Type` / `for<'a>` header,
                // not a loop.
                if j - i > 12 || flat[j].is_punct(';') || matches!(flat[j], Flat::Open('{', _)) {
                    names.clear();
                    break;
                }
                j += 1;
            }
            if names.is_empty() || j >= flat.len() {
                i += 1;
                continue;
            }
            // Iterated expression: from after `in` to the loop body `{`.
            let mut k = j + 1;
            while k < flat.len() && !matches!(flat[k], Flat::Open('{', _)) {
                k += 1;
            }
            if let Some(kind) = span_tainted(flat, j + 1..k, &self.tainted) {
                for name in names {
                    self.tainted.insert(name, kind);
                }
            }
            i = j + 1;
        }
    }

    /// `<path> = <rhs>;` and compound assignments (`+=` etc.).
    fn scan_assigns(&mut self) {
        let flat = self.flat;
        let mut i = 1;
        while i < flat.len() {
            if !flat[i].is_punct('=') {
                i += 1;
                continue;
            }
            // Reject `==`, `<=`, `>=`, `!=`, `=>`; accept `x =` and `x +=`.
            if flat.get(i + 1).is_some_and(|t| t.is_punct('=') || t.is_punct('>')) {
                i += 2;
                continue;
            }
            let mut lhs_end = i;
            let compound = flat[i - 1].is_punct('+')
                || flat[i - 1].is_punct('-')
                || flat[i - 1].is_punct('*')
                || flat[i - 1].is_punct('/')
                || flat[i - 1].is_punct('%')
                || flat[i - 1].is_punct('|')
                || flat[i - 1].is_punct('&')
                || flat[i - 1].is_punct('^');
            if flat[i - 1].is_punct('<') || flat[i - 1].is_punct('>') || flat[i - 1].is_punct('!') {
                i += 1;
                continue;
            }
            if compound {
                lhs_end = i - 1;
            }
            // LHS: trailing ident path `a.b.c` directly before the operator.
            let mut names = Vec::new();
            let mut j = lhs_end;
            while j > 0 {
                let prev = &flat[j - 1];
                if let Some(name) = prev.ident() {
                    names.push(name.to_owned());
                    j -= 1;
                    if j > 0 && flat[j - 1].is_punct('.') {
                        j -= 1;
                        continue;
                    }
                    break;
                }
                break;
            }
            if names.is_empty() {
                i += 1;
                continue;
            }
            // A `let` initializer is scan_lets' statement, not an
            // assignment: reporting it here too would double-count.
            if j > 0 && matches!(flat[j - 1].ident(), Some("let") | Some("mut")) {
                i += 1;
                continue;
            }
            let end = stmt_end(flat, i + 1);
            if let Some(kind) = span_tainted(flat, i + 1..end, &self.tainted) {
                // Only the field/variable written becomes tainted; the
                // base object of a path (`self`) does not.
                self.tainted.insert(names[0].clone(), kind);
                for name in &names {
                    if S3_SINKS.contains(&name.as_str()) {
                        self.findings.push((
                            flat[i].line(),
                            format!(
                                "ordering key `{name}` is assigned from {kind}: the `(t_ns, \
                                 seq, stage)` order must be a pure function of the seeded \
                                 simulation"
                            ),
                        ));
                    }
                }
            }
            i = end;
        }
    }

    /// Sink calls: `push(...)` / `mint(...)` / `schedule(...)` with a
    /// tainted argument or an inline source.
    fn scan_sink_calls(&mut self) {
        let flat = self.flat;
        for i in 0..flat.len() {
            let Some(name) = flat[i].ident() else { continue };
            if !S3_SINK_CALLS.contains(&name) {
                continue;
            }
            let Some(Flat::Open('(', _)) = flat.get(i + 1) else { continue };
            // Argument span: to the matching close.
            let mut depth = 0i32;
            let mut j = i + 1;
            while j < flat.len() {
                match flat[j] {
                    Flat::Open(..) => depth += 1,
                    Flat::Close(..) => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
            if let Some(kind) = span_tainted(flat, i + 2..j, &self.tainted) {
                self.findings.push((
                    flat[i].line(),
                    format!(
                        "scheduler `{name}(...)` receives a value derived from {kind}: event \
                         ordering must not depend on host state"
                    ),
                ));
            }
        }
    }
}

/// The index one past the end of the statement starting at `from`: the
/// next `;` at the current nesting depth (group boundaries tracked), or
/// the end of the body.
fn stmt_end(flat: &[Flat], from: usize) -> usize {
    let mut depth = 0i32;
    let mut i = from;
    while i < flat.len() {
        match flat[i] {
            Flat::Open(..) => depth += 1,
            Flat::Close(..) => {
                if depth == 0 {
                    return i;
                }
                depth -= 1;
            }
            _ if depth == 0 && flat[i].is_punct(';') => return i,
            _ => {}
        }
        i += 1;
    }
    flat.len()
}

/// Parameters whose declared type names a taint source seed the taint
/// set: `m: &HashMap<u64, u64>` makes `m` tainted throughout the body.
fn seed_from_params(params: &Group) -> BTreeMap<String, &'static str> {
    let mut flat = Vec::new();
    flatten(params, &mut flat);
    let mut seeded = BTreeMap::new();
    // Split the parameter list on top-level commas.
    let mut start = 0;
    let mut depth = 0i32;
    let mut cuts = Vec::new();
    for (i, f) in flat.iter().enumerate() {
        match f {
            Flat::Open(..) => depth += 1,
            Flat::Close(..) => depth -= 1,
            _ if depth == 0 && f.is_punct(',') => cuts.push(i),
            _ => {}
        }
    }
    cuts.push(flat.len());
    for cut in cuts {
        let seg = &flat[start..cut];
        start = cut + 1;
        let Some(colon) = seg.iter().position(|f| f.is_punct(':')) else { continue };
        let ty_source = (colon + 1..seg.len()).find_map(|i| match seg[i].ident() {
            Some("HashMap") | Some("HashSet") => Some("hash-iteration order"),
            Some("Instant") | Some("SystemTime") => Some("a wall-clock read"),
            _ => source_at(seg, i).map(|(kind, _)| kind),
        });
        if let Some(kind) = ty_source {
            for f in &seg[..colon] {
                if let Some(name) = f.ident() {
                    if !matches!(name, "mut" | "ref" | "self") {
                        seeded.insert(name.to_owned(), kind);
                    }
                }
            }
        }
    }
    seeded
}

/// Runs the taint fixpoint over one `fn` item.
fn taint_fn(item: &FnItem<'_>, out: &mut Vec<TreeFinding>) {
    let mut flat = Vec::new();
    flatten(item.body, &mut flat);
    let seeded = item.params.map(seed_from_params).unwrap_or_default();
    // Fast reject: a body with no source pattern and no tainted
    // parameter cannot taint anything.
    if seeded.is_empty() && (0..flat.len()).all(|i| source_at(&flat, i).is_none()) {
        return;
    }
    let mut pass = BodyPass { flat: &flat, tainted: seeded, findings: Vec::new() };
    for _ in 0..16 {
        if !pass.iterate() {
            break;
        }
    }
    // One more binding sweep so sinks assigned before their source's
    // binding iteration stabilized are still caught, then the calls.
    pass.scan_lets();
    pass.scan_assigns();
    pass.scan_sink_calls();
    pass.findings.sort();
    pass.findings.dedup();
    for (line, message) in pass.findings {
        out.push(TreeFinding { rule: "S3", line, message });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::scanner::scan;

    fn run(rel: &str, src: &str) -> Vec<TreeFinding> {
        let tokens = lex(src);
        let test_lines: Vec<bool> = scan(src).into_iter().map(|l| l.in_test).collect();
        analyze(rel, &tokens, &test_lines)
    }

    #[test]
    fn s1_flags_cells_and_static_mut_in_simnet_only() {
        let src = "static mut COUNTER: u64 = 0;\nfn f(x: RefCell<u64>) {}\n";
        let hits = run("crates/simnet/src/x.rs", src);
        assert_eq!(hits.iter().filter(|f| f.rule == "S1").count(), 2, "{hits:?}");
        assert!(run("crates/core/src/x.rs", src).iter().all(|f| f.rule != "S1"));
    }

    #[test]
    fn s1_names_the_rendezvous_class_separately() {
        let src = "fn f(b: &Barrier) { b.wait(); }\nfn g(c: &Condvar) {}\n";
        let hits = run("crates/simnet/src/x.rs", src);
        assert_eq!(hits.len(), 2, "{hits:?}");
        assert!(hits.iter().all(|h| h.rule == "S1"));
        assert!(hits[0].message.contains("blocking rendezvous"));
        assert!(hits[0].message.contains("epoch-barrier"));
        assert!(run("crates/bench/src/x.rs", src).is_empty(), "scope stays simnet");
    }

    #[test]
    fn s2_flags_unseeded_rng_everywhere_but_the_rng_crate() {
        let src = "fn f() { let r = thread_rng(); let h = RandomState::new(); }\n";
        assert_eq!(run("crates/bench/src/x.rs", src).len(), 2);
        assert!(run("crates/rng/src/x.rs", src).is_empty());
    }

    #[test]
    fn s3_direct_sink_bindings() {
        let src = "fn f() { let t_ns = Instant::now().elapsed().as_nanos() as u64; }\n";
        let hits = run("crates/simnet/src/x.rs", src);
        assert!(
            hits.iter().any(|f| f.rule == "S3" && f.message.contains("wall-clock")),
            "{hits:?}"
        );
    }

    #[test]
    fn s3_pointer_derived_seq_through_indirection() {
        let src = "fn f(pkt: &P) {\n    let addr = &raw const *pkt as *const P as usize;\n    let seq = addr as u64;\n}\n";
        let hits = run("crates/simnet/src/x.rs", src);
        assert!(
            hits.iter().any(|f| f.rule == "S3" && f.message.contains("pointer/address")),
            "{hits:?}"
        );
    }

    #[test]
    fn s3_hash_iteration_into_sink_call() {
        let src = "fn f(m: &HashMap<u64, u64>, w: &mut W) {\n    for (k, v) in m.iter() {\n        w.push(*k, *v, 0);\n    }\n}\n";
        let hits = run("crates/simnet/src/x.rs", src);
        assert!(hits.iter().any(|f| f.rule == "S3" && f.message.contains("push")), "{hits:?}");
    }

    #[test]
    fn s3_untainted_code_is_silent() {
        let src = "fn f(core: &mut C) {\n    let t_ns = core.now + delay;\n    let seq = core.mint_seq();\n    core.events.push(t_ns, seq, tag);\n}\n";
        assert!(run("crates/simnet/src/x.rs", src).is_empty());
    }

    #[test]
    fn test_regions_are_skipped() {
        let src = "#[cfg(test)]\nmod tests {\n    fn f() { let t_ns = Instant::now().as_nanos(); let m: HashMap<u8,u8> = HashMap::new(); }\n}\n";
        assert!(run("crates/simnet/src/x.rs", src).is_empty());
    }
}
