//! # apples-lint
//!
//! A hermetic static-analysis pass (`xp lint`) enforcing the invariants
//! the workspace's results depend on: **determinism** (no unordered
//! containers, wall-clock reads, or raw threads in simulation paths),
//! **panic hygiene** (library crates return `Result` or document their
//! invariants), **numeric/unit safety** (no float-literal equality, no
//! raw `f64` bypassing the `Quantity` newtypes in `apples-metrics`),
//! and **hygiene headers** on every crate root.
//!
//! The paper's argument — evaluation results are only trustworthy when
//! the methodology is auditable — extends to the artifact itself: PR 1
//! made every report bit-for-bit reproducible across worker counts, and
//! a single stray `HashMap` iteration or `Instant::now` silently
//! destroys that property. These rules make the guarantee machine-
//! checked instead of review-checked.
//!
//! Because the workspace is hermetic (zero external crates, enforced by
//! `scripts/ci.sh`), the analyzer is hand-rolled: a line/token scanner
//! that understands comments, strings, attributes, and test regions —
//! no full parser needed (see [`scanner`]). The rule catalog and the
//! suppression syntax live in [`rules`]; the driver and the JSON
//! rendering (via the workspace's own emitter) in [`engine`].
//!
//! ```no_run
//! use apples_lint::lint_workspace;
//! let report = lint_workspace(std::path::Path::new(".")).expect("readable tree");
//! println!("{}", report.render());
//! std::process::exit(if report.deny_count() > 0 { 1 } else { 0 });
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod engine;
pub mod lexer;
pub mod rules;
pub mod scanner;
pub mod taint;

pub use engine::{lint_source, lint_workspace, load_baseline, Finding, LintReport};
pub use rules::{Rule, Severity, CATALOG};
