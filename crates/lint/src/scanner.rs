//! Lexical masking for line rules, rebuilt on the spanned lexer.
//!
//! The rule engine wants to ask "does this *code* line mention
//! `HashMap`?" without tripping over the word appearing inside a string
//! literal, a comment, or a doctest. [`scan`] runs the real lexer
//! ([`crate::lexer`]) once and projects its spanned tokens back onto
//! lines, producing per line:
//!
//! - the **masked code**: the original line with every comment and every
//!   string/char-literal body replaced by spaces (so character offsets
//!   are preserved and token checks see only real code);
//! - the **comment text** on that line (where `lint: allow(...)`
//!   suppressions live);
//! - whether the line sits inside a **test region** — a `#[cfg(test)]`
//!   item or a `mod tests { ... }` block — which most rules skip.
//!
//! Handled lexical shapes are the lexer's: `//`/`///`/`//!` line
//! comments, nested `/* */` block comments, `"..."` strings with
//! escapes, raw strings `r"..."`/`r#"..."#` (any number of `#`s, plus
//! `br` variants), byte strings, char and byte-char literals, raw
//! identifiers, and lifetimes (`'a` is code, not an unterminated char
//! literal). Because this is a projection of the same token stream the
//! dataflow rules walk, the line rules and the tree rules can never
//! disagree about what is code.

use crate::lexer::{lex, TokKind, Token};

/// One source line after masking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScannedLine {
    /// Code with comments and literal bodies blanked to spaces.
    pub code: String,
    /// Concatenated comment text appearing on this line.
    pub comment: String,
    /// True inside `#[cfg(test)]` items and `mod tests` blocks.
    pub in_test: bool,
}

/// Scans a whole source file into masked lines.
pub fn scan(src: &str) -> Vec<ScannedLine> {
    scan_tokens(src, &lex(src))
}

/// [`scan`] over an already-lexed token stream (the engine lexes once
/// and shares the tokens between the line rules and the tree rules).
pub fn scan_tokens(src: &str, tokens: &[Token]) -> Vec<ScannedLine> {
    mark_test_regions(project_lines(src, tokens))
}

/// Projects tokens back onto per-line `(code, comment)` buffers. Code
/// lines start as all-spaces at the original character length; every
/// code token is written back at its column, so offsets are stable and
/// everything between tokens (comments, literal bodies, whitespace)
/// stays blank.
fn project_lines(src: &str, tokens: &[Token]) -> Vec<(String, String)> {
    let mut lines: Vec<(Vec<char>, String)> =
        src.split('\n').map(|l| (vec![' '; l.chars().count()], String::new())).collect();

    for tok in tokens {
        match tok.kind {
            TokKind::Comment => {
                for (k, part) in tok.text.split('\n').enumerate() {
                    if let Some(line) = lines.get_mut(tok.line + k) {
                        line.1.push_str(part);
                    }
                }
            }
            // Literal bodies stay blanked, exactly like the PR 2 scanner.
            TokKind::Str | TokKind::Char => {}
            _ => {
                if let Some(line) = lines.get_mut(tok.line) {
                    for (k, ch) in tok.text.chars().enumerate() {
                        if let Some(slot) = line.0.get_mut(tok.col + k) {
                            *slot = ch;
                        }
                    }
                }
            }
        }
    }
    lines.into_iter().map(|(code, comment)| (code.into_iter().collect(), comment)).collect()
}

/// Marks lines inside `#[cfg(test)]` items or `mod tests` blocks by
/// tracking brace depth over the masked code.
fn mark_test_regions(masked: Vec<(String, String)>) -> Vec<ScannedLine> {
    let mut out = Vec::with_capacity(masked.len());
    let mut depth: i64 = 0;
    // Depth at which the enclosing test region closes, if any.
    let mut test_close_depth: Option<i64> = None;
    // A `#[cfg(test)]` was seen and we are waiting for the item body.
    let mut pending_attr = false;

    for (code, comment) in masked {
        let trimmed = code.trim();
        if trimmed.contains("cfg(test)") {
            pending_attr = true;
        }
        let starts_mod_tests = trimmed.starts_with("mod tests")
            || trimmed.starts_with("pub mod tests")
            || trimmed.starts_with("pub(crate) mod tests");
        let mut in_test = test_close_depth.is_some() || pending_attr || starts_mod_tests;

        for ch in code.chars() {
            match ch {
                '{' => {
                    if test_close_depth.is_none() && (pending_attr || starts_mod_tests) {
                        test_close_depth = Some(depth);
                        pending_attr = false;
                        in_test = true;
                    }
                    depth += 1;
                }
                '}' => {
                    depth -= 1;
                    if test_close_depth == Some(depth) {
                        test_close_depth = None;
                    }
                }
                // `#[cfg(test)] use foo;` — attribute consumed by a
                // braceless item (still test-only code, this line).
                ';' if pending_attr && test_close_depth.is_none() => {
                    pending_attr = false;
                }
                _ => {}
            }
        }
        out.push(ScannedLine { code, comment, in_test });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codes(src: &str) -> Vec<String> {
        scan(src).into_iter().map(|l| l.code).collect()
    }

    #[test]
    fn strings_and_comments_are_blanked() {
        let got = codes("let x = \"HashMap\"; // HashMap here\nuse std::collections::HashMap;");
        assert!(!got[0].contains("HashMap"), "{:?}", got[0]);
        assert!(got[1].contains("HashMap"));
    }

    #[test]
    fn comment_text_is_collected() {
        let s = scan("let a = 1; // lint: allow(D1, reason = \"x\")");
        assert!(s[0].comment.contains("lint: allow(D1"));
        assert!(s[0].code.contains("let a = 1;"));
    }

    #[test]
    fn block_comments_nest_and_span_lines() {
        let got = codes("/* outer /* inner */ still comment */ code()\n/* a\nb */ after");
        assert!(got[0].ends_with("code()"));
        assert!(!got[0].contains("outer"));
        assert_eq!(got[1].trim(), "");
        assert!(got[2].contains("after"));
    }

    // Satellite regression: a nested block comment whose inner close sits
    // on its own line must not resurrect code until the outer close.
    #[test]
    fn nested_block_comment_multiline_inner_close() {
        let got = codes("/* outer\n/* inner\n*/ not_code()\n*/ real()");
        assert_eq!(got[0].trim(), "");
        assert_eq!(got[1].trim(), "");
        assert_eq!(got[2].trim(), "", "inner close must not end the outer comment");
        assert!(got[3].contains("real()"));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let got = codes("let p = r#\"unwrap() \"quoted\" \"#; tail()");
        assert!(!got[0].contains("unwrap"));
        assert!(got[0].contains("tail()"));
    }

    // Satellite regression: a `"#` inside a `r##"..."##` body is not the
    // fence, and the multi-line body must blank every covered line.
    #[test]
    fn raw_string_multihash_fake_fence_and_multiline() {
        let got =
            codes("let p = r##\"inner \"# HashMap \"##; g()\nlet q = r\"a\nInstant::now b\"; h()");
        assert!(!got[0].contains("HashMap"), "{:?}", got[0]);
        assert!(got[0].contains("g()"));
        assert!(!got[1].contains("Instant"));
        assert!(!got[2].contains("Instant"), "{:?}", got[2]);
        assert!(got[2].contains("h()"));
    }

    // Satellite regression: raw identifiers are code, not raw strings.
    #[test]
    fn raw_identifier_is_not_a_raw_string() {
        let got = codes("let r#type = 1; still_code()");
        assert!(got[0].contains("type"));
        assert!(got[0].contains("still_code()"));
    }

    #[test]
    fn char_literals_and_lifetimes() {
        let got = codes("fn f<'a>(x: &'a str) { let c = '\"'; let q = '{'; g(x) }");
        // The brace inside the char literal must not change depth, and
        // the lifetime must not swallow the rest of the line.
        assert!(got[0].contains("g(x)"));
        assert!(!got[0].contains('"'));
    }

    // Satellite regression: a char literal holding a slash must not open
    // a comment, and the code after it stays visible.
    #[test]
    fn char_literal_slash_is_not_a_comment() {
        let got = codes("let sep = '/'; after(); // real comment\nlet pair = ('/', '/'); tail()");
        assert!(got[0].contains("after()"), "{:?}", got[0]);
        assert!(!got[0].contains("real comment"));
        assert!(got[1].contains("tail()"), "{:?}", got[1]);
        let s = scan("let sep = '/'; // lint: allow(D1, reason = \"x\")");
        assert!(s[0].comment.contains("lint: allow(D1"), "comment after char literal parses");
    }

    #[test]
    fn byte_strings_are_masked() {
        let got = codes("let b = b\"panic!\"; let r = br#\"expect(\"#; h()");
        assert!(!got[0].contains("panic"));
        assert!(!got[0].contains("expect"));
        assert!(got[0].contains("h()"));
    }

    #[test]
    fn cfg_test_region_is_marked() {
        let src =
            "fn real() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn after() {}";
        let s = scan(src);
        assert!(!s[0].in_test);
        assert!(s[1].in_test && s[2].in_test && s[3].in_test && s[4].in_test);
        assert!(!s[5].in_test, "region must close");
    }

    #[test]
    fn mod_tests_without_attr_is_marked() {
        let s = scan("mod tests {\n    fn t() {}\n}\nfn real() {}");
        assert!(s[0].in_test && s[1].in_test);
        assert!(!s[3].in_test);
    }

    #[test]
    fn cfg_test_on_braceless_item_does_not_leak() {
        let s = scan("#[cfg(test)]\nuse helper::*;\nfn real() { body() }");
        assert!(s[0].in_test && s[1].in_test);
        assert!(!s[2].in_test, "attribute must not latch onto later braces");
    }

    #[test]
    fn escaped_quote_does_not_end_string() {
        let got = codes("let s = \"a\\\"unwrap()\\\"b\"; done()");
        assert!(!got[0].contains("unwrap"));
        assert!(got[0].contains("done()"));
    }

    // Satellite regression: multi-line strings (with and without a
    // line-continuation escape) keep line numbers in sync.
    #[test]
    fn multiline_strings_keep_line_sync() {
        let got = codes("let s = \"one\ntwo\"; a()\nb()");
        assert_eq!(got.len(), 3);
        assert!(!got[0].contains("one"));
        assert!(got[1].contains("a()"));
        assert!(got[2].contains("b()"));
        let got = codes("let s = \"one\\\n  two\"; c()\nd()");
        assert!(got[1].contains("c()"), "{:?}", got);
        assert!(got[2].contains("d()"));
    }
}
