//! Lexical masking for rule checks: a line/token scanner, not a parser.
//!
//! The rule engine wants to ask "does this *code* line mention
//! `HashMap`?" without tripping over the word appearing inside a string
//! literal, a comment, or a doctest. [`scan`] walks the source once with
//! a small state machine and produces, per line:
//!
//! - the **masked code**: the original line with every comment and every
//!   string/char-literal body replaced by spaces (so byte offsets are
//!   preserved and token checks see only real code);
//! - the **comment text** on that line (where `lint: allow(...)`
//!   suppressions live);
//! - whether the line sits inside a **test region** — a `#[cfg(test)]`
//!   item or a `mod tests { ... }` block — which most rules skip.
//!
//! Handled lexical shapes: `//`/`///`/`//!` line comments, nested
//! `/* */` block comments, `"..."` strings with escapes, raw strings
//! `r"..."`/`r#"..."#` (any number of `#`s, plus `br` variants), byte
//! strings, char and byte-char literals, and lifetimes (`'a` is code,
//! not an unterminated char literal).

/// One source line after masking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScannedLine {
    /// Code with comments and literal bodies blanked to spaces.
    pub code: String,
    /// Concatenated comment text appearing on this line.
    pub comment: String,
    /// True inside `#[cfg(test)]` items and `mod tests` blocks.
    pub in_test: bool,
}

/// Lexer state carried across characters (and across lines).
enum Mode {
    Code,
    LineComment,
    BlockComment { depth: u32 },
    Str,
    RawStr { hashes: u32 },
    Char,
}

/// Scans a whole source file into masked lines.
pub fn scan(src: &str) -> Vec<ScannedLine> {
    let masked = mask(src);
    mark_test_regions(masked)
}

fn is_ident(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// Pass 1: blank out comments and literal bodies, collecting comment
/// text per line.
fn mask(src: &str) -> Vec<(String, String)> {
    let mut lines: Vec<(String, String)> = vec![(String::new(), String::new())];
    let chars: Vec<char> = src.chars().collect();
    let mut mode = Mode::Code;
    let mut prev_code_char = ' ';
    let mut i = 0usize;

    // Appends to the current line's code or comment buffer.
    macro_rules! cur {
        () => {
            match lines.last_mut() {
                Some(l) => l,
                // `lines` starts non-empty and only grows.
                None => unreachable!("line buffer is never empty"),
            }
        };
    }

    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            // A line comment ends at the newline; everything else
            // (block comments, raw strings) continues across it.
            if matches!(mode, Mode::LineComment) {
                mode = Mode::Code;
            }
            lines.push((String::new(), String::new()));
            i += 1;
            continue;
        }
        match mode {
            Mode::Code => {
                let next = chars.get(i + 1).copied().unwrap_or(' ');
                if c == '/' && next == '/' {
                    mode = Mode::LineComment;
                    cur!().0.push_str("  ");
                    i += 2;
                    continue;
                }
                if c == '/' && next == '*' {
                    mode = Mode::BlockComment { depth: 1 };
                    cur!().0.push_str("  ");
                    i += 2;
                    continue;
                }
                // Raw / byte string prefixes: r", r#", br", b".
                if (c == 'r' || c == 'b') && !is_ident(prev_code_char) {
                    let mut j = i + 1;
                    if c == 'b' && chars.get(j) == Some(&'r') {
                        j += 1;
                    }
                    let mut hashes = 0u32;
                    while chars.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    let is_raw = j > i + 1 || c == 'r';
                    if chars.get(j) == Some(&'"') && (is_raw || c == 'b') {
                        if is_raw {
                            mode = Mode::RawStr { hashes };
                        } else {
                            mode = Mode::Str;
                        }
                        for _ in i..=j {
                            cur!().0.push(' ');
                        }
                        prev_code_char = ' ';
                        i = j + 1;
                        continue;
                    }
                    if c == 'b' && chars.get(i + 1) == Some(&'\'') {
                        mode = Mode::Char;
                        cur!().0.push_str("  ");
                        prev_code_char = ' ';
                        i += 2;
                        continue;
                    }
                }
                if c == '"' {
                    mode = Mode::Str;
                    cur!().0.push(' ');
                    prev_code_char = ' ';
                    i += 1;
                    continue;
                }
                if c == '\'' {
                    // Char literal vs lifetime: a literal is '\x', or a
                    // single char followed by a closing quote.
                    let n1 = chars.get(i + 1).copied();
                    let n2 = chars.get(i + 2).copied();
                    if n1 == Some('\\') || (n1.is_some() && n2 == Some('\'')) {
                        mode = Mode::Char;
                        cur!().0.push(' ');
                        prev_code_char = ' ';
                        i += 1;
                        continue;
                    }
                    // Lifetime: fall through as code.
                }
                cur!().0.push(c);
                if !c.is_whitespace() {
                    prev_code_char = c;
                }
                i += 1;
            }
            Mode::LineComment => {
                cur!().1.push(c);
                cur!().0.push(' ');
                i += 1;
            }
            Mode::BlockComment { depth } => {
                let next = chars.get(i + 1).copied().unwrap_or(' ');
                if c == '*' && next == '/' {
                    mode = if depth == 1 {
                        Mode::Code
                    } else {
                        Mode::BlockComment { depth: depth - 1 }
                    };
                    cur!().0.push_str("  ");
                    i += 2;
                } else if c == '/' && next == '*' {
                    mode = Mode::BlockComment { depth: depth + 1 };
                    cur!().0.push_str("  ");
                    i += 2;
                } else {
                    cur!().1.push(c);
                    cur!().0.push(' ');
                    i += 1;
                }
            }
            Mode::Str => {
                if c == '\\' {
                    if chars.get(i + 1) == Some(&'\n') {
                        // Line-continuation escape: leave the newline to
                        // the line handler so line numbers stay in sync.
                        cur!().0.push(' ');
                        i += 1;
                    } else {
                        cur!().0.push_str("  ");
                        i += 2;
                    }
                } else {
                    if c == '"' {
                        mode = Mode::Code;
                    }
                    cur!().0.push(' ');
                    i += 1;
                }
            }
            Mode::RawStr { hashes } => {
                if c == '"' {
                    let mut ok = true;
                    for k in 0..hashes {
                        if chars.get(i + 1 + k as usize) != Some(&'#') {
                            ok = false;
                            break;
                        }
                    }
                    if ok {
                        mode = Mode::Code;
                        for _ in 0..=hashes {
                            cur!().0.push(' ');
                        }
                        i += 1 + hashes as usize;
                        continue;
                    }
                }
                cur!().0.push(' ');
                i += 1;
            }
            Mode::Char => {
                if c == '\\' {
                    cur!().0.push_str("  ");
                    i += 2;
                } else {
                    if c == '\'' {
                        mode = Mode::Code;
                    }
                    cur!().0.push(' ');
                    i += 1;
                }
            }
        }
    }
    lines
}

/// Pass 2: mark lines inside `#[cfg(test)]` items or `mod tests`
/// blocks by tracking brace depth over the masked code.
fn mark_test_regions(masked: Vec<(String, String)>) -> Vec<ScannedLine> {
    let mut out = Vec::with_capacity(masked.len());
    let mut depth: i64 = 0;
    // Depth at which the enclosing test region closes, if any.
    let mut test_close_depth: Option<i64> = None;
    // A `#[cfg(test)]` was seen and we are waiting for the item body.
    let mut pending_attr = false;

    for (code, comment) in masked {
        let trimmed = code.trim();
        if trimmed.contains("cfg(test)") {
            pending_attr = true;
        }
        let starts_mod_tests = trimmed.starts_with("mod tests")
            || trimmed.starts_with("pub mod tests")
            || trimmed.starts_with("pub(crate) mod tests");
        let mut in_test = test_close_depth.is_some() || pending_attr || starts_mod_tests;

        for ch in code.chars() {
            match ch {
                '{' => {
                    if test_close_depth.is_none() && (pending_attr || starts_mod_tests) {
                        test_close_depth = Some(depth);
                        pending_attr = false;
                        in_test = true;
                    }
                    depth += 1;
                }
                '}' => {
                    depth -= 1;
                    if test_close_depth == Some(depth) {
                        test_close_depth = None;
                    }
                }
                // `#[cfg(test)] use foo;` — attribute consumed by a
                // braceless item (still test-only code, this line).
                ';' if pending_attr && test_close_depth.is_none() => {
                    pending_attr = false;
                }
                _ => {}
            }
        }
        out.push(ScannedLine { code, comment, in_test });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codes(src: &str) -> Vec<String> {
        scan(src).into_iter().map(|l| l.code).collect()
    }

    #[test]
    fn strings_and_comments_are_blanked() {
        let got = codes("let x = \"HashMap\"; // HashMap here\nuse std::collections::HashMap;");
        assert!(!got[0].contains("HashMap"), "{:?}", got[0]);
        assert!(got[1].contains("HashMap"));
    }

    #[test]
    fn comment_text_is_collected() {
        let s = scan("let a = 1; // lint: allow(D1, reason = \"x\")");
        assert!(s[0].comment.contains("lint: allow(D1"));
        assert!(s[0].code.contains("let a = 1;"));
    }

    #[test]
    fn block_comments_nest_and_span_lines() {
        let got = codes("/* outer /* inner */ still comment */ code()\n/* a\nb */ after");
        assert!(got[0].ends_with("code()"));
        assert!(!got[0].contains("outer"));
        assert_eq!(got[1].trim(), "");
        assert!(got[2].contains("after"));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let got = codes("let p = r#\"unwrap() \"quoted\" \"#; tail()");
        assert!(!got[0].contains("unwrap"));
        assert!(got[0].contains("tail()"));
    }

    #[test]
    fn char_literals_and_lifetimes() {
        let got = codes("fn f<'a>(x: &'a str) { let c = '\"'; let q = '{'; g(x) }");
        // The brace inside the char literal must not change depth, and
        // the lifetime must not swallow the rest of the line.
        assert!(got[0].contains("g(x)"));
        assert!(!got[0].contains('"'));
    }

    #[test]
    fn byte_strings_are_masked() {
        let got = codes("let b = b\"panic!\"; let r = br#\"expect(\"#; h()");
        assert!(!got[0].contains("panic"));
        assert!(!got[0].contains("expect"));
        assert!(got[0].contains("h()"));
    }

    #[test]
    fn cfg_test_region_is_marked() {
        let src =
            "fn real() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn after() {}";
        let s = scan(src);
        assert!(!s[0].in_test);
        assert!(s[1].in_test && s[2].in_test && s[3].in_test && s[4].in_test);
        assert!(!s[5].in_test, "region must close");
    }

    #[test]
    fn mod_tests_without_attr_is_marked() {
        let s = scan("mod tests {\n    fn t() {}\n}\nfn real() {}");
        assert!(s[0].in_test && s[1].in_test);
        assert!(!s[3].in_test);
    }

    #[test]
    fn cfg_test_on_braceless_item_does_not_leak() {
        let s = scan("#[cfg(test)]\nuse helper::*;\nfn real() { body() }");
        assert!(s[0].in_test && s[1].in_test);
        assert!(!s[2].in_test, "attribute must not latch onto later braces");
    }

    #[test]
    fn escaped_quote_does_not_end_string() {
        let got = codes("let s = \"a\\\"unwrap()\\\"b\"; done()");
        assert!(!got[0].contains("unwrap"));
        assert!(got[0].contains("done()"));
    }
}
