//! The analysis driver: walks a workspace, applies the rule catalog to
//! every non-test `.rs` file, resolves `lint: allow` suppressions, and
//! renders findings as human-readable text or machine-readable JSON
//! (via the workspace's hand-rolled emitter).
//!
//! Everything is deterministic: directory entries are visited in sorted
//! order and findings are sorted by (path, line, rule), so two runs over
//! the same tree produce byte-identical output and the same exit code.

use crate::lexer::lex;
use crate::rules::{float_literal_comparison, has_token, parse_allows, rule, Severity};
use crate::scanner::{scan_tokens, ScannedLine};
use apples_core::json::Json;
use std::collections::BTreeSet;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// One reported violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule id from the catalog (`D1`, `P1`, …).
    pub rule: &'static str,
    /// Severity tier of the rule.
    pub severity: Severity,
    /// Workspace-relative path with forward slashes.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// What was found.
    pub message: String,
    /// The offending source line, trimmed.
    pub snippet: String,
    /// Stable FNV-1a identity: hashes `(rule, path, whitespace-collapsed
    /// snippet, same-content occurrence index)` — everything *except*
    /// the line number — so the fingerprint survives reformatting and
    /// code motion, and a baseline keeps matching after a refactor.
    pub fingerprint: String,
    /// True when the fingerprint matched an entry of the loaded
    /// baseline: tracked, rendered, but not counted by
    /// [`LintReport::deny_count`] (new findings gate, legacy ones don't).
    pub legacy: bool,
}

/// The outcome of linting a tree.
#[derive(Debug, Clone, Default)]
pub struct LintReport {
    /// All findings, sorted by (path, line, rule).
    pub findings: Vec<Finding>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Number of findings suppressed by a reasoned `lint: allow`.
    pub suppressed: usize,
}

impl LintReport {
    /// Number of gating deny-tier findings (the CI gate). Findings
    /// marked legacy by a baseline are excluded: they are tracked debt,
    /// not new violations.
    pub fn deny_count(&self) -> usize {
        self.findings.iter().filter(|f| f.severity == Severity::Deny && !f.legacy).count()
    }

    /// Number of warn-tier findings (legacy ones excluded).
    pub fn warn_count(&self) -> usize {
        self.findings.iter().filter(|f| f.severity == Severity::Warn && !f.legacy).count()
    }

    /// Number of findings matched (and defused) by the loaded baseline.
    pub fn legacy_count(&self) -> usize {
        self.findings.iter().filter(|f| f.legacy).count()
    }

    /// Marks every finding whose fingerprint appears in `baseline` as
    /// legacy: still rendered, no longer gating. Returns the baseline
    /// entries that matched nothing (a fixed finding whose entry should
    /// be retired).
    pub fn apply_baseline(&mut self, baseline: &BTreeSet<String>) -> Vec<String> {
        let mut matched = BTreeSet::new();
        for f in &mut self.findings {
            if baseline.contains(&f.fingerprint) {
                f.legacy = true;
                matched.insert(f.fingerprint.clone());
            }
        }
        baseline.iter().filter(|fp| !matched.contains(*fp)).cloned().collect()
    }

    /// Human-readable rendering, one block per finding plus a summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&format!(
                "{}:{} [{}/{}{}] {}\n    {}\n",
                f.path,
                f.line,
                f.rule,
                f.severity.name(),
                if f.legacy { ", legacy" } else { "" },
                f.message,
                f.snippet
            ));
        }
        out.push_str(&format!(
            "xp lint: {} finding(s) ({} deny, {} warn, {} legacy), {} suppressed, {} file(s) \
             scanned\n",
            self.findings.len(),
            self.deny_count(),
            self.warn_count(),
            self.legacy_count(),
            self.suppressed,
            self.files_scanned
        ));
        out
    }

    /// Machine-readable rendering (see `reports/lint-schema.json`).
    pub fn to_json(&self) -> Json {
        let findings: Vec<Json> = self
            .findings
            .iter()
            .map(|f| {
                Json::obj()
                    .field("rule", f.rule)
                    .field("severity", f.severity.name())
                    .field("path", f.path.as_str())
                    .field("line", f.line)
                    .field("message", f.message.as_str())
                    .field("snippet", f.snippet.as_str())
                    .field("fingerprint", f.fingerprint.as_str())
                    .field("legacy", f.legacy)
            })
            .collect();
        Json::obj()
            .field("tool", "xp lint")
            .field("schema_version", 2u64)
            .field("files_scanned", self.files_scanned)
            .field("deny", self.deny_count())
            .field("warn", self.warn_count())
            .field("legacy", self.legacy_count())
            .field("suppressed", self.suppressed)
            .field("findings", Json::Arr(findings))
    }
}

/// 64-bit FNV-1a (same parameters as `apples-obs`'s provenance digests;
/// duplicated here so the analyzer keeps zero workspace dependencies
/// beyond the JSON emitter).
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Sorts findings into report order and stamps each with its stable
/// fingerprint. Called once per report, after every file is linted.
fn finalize(report: &mut LintReport) {
    report
        .findings
        .sort_by(|a, b| (a.path.as_str(), a.line, a.rule).cmp(&(b.path.as_str(), b.line, b.rule)));
    // Occurrence index: the n-th finding with identical (rule, path,
    // normalized snippet) content keeps a distinct, stable identity.
    let mut seen: std::collections::BTreeMap<(String, String, String), usize> =
        std::collections::BTreeMap::new();
    for f in &mut report.findings {
        let normalized = f.snippet.split_whitespace().collect::<Vec<_>>().join(" ");
        let key = (f.rule.to_owned(), f.path.clone(), normalized.clone());
        let n = seen.entry(key).or_insert(0);
        let material = format!("{}\u{0}{}\u{0}{}\u{0}{}", f.rule, f.path, normalized, n);
        f.fingerprint = format!("{:016x}", fnv1a64(material.as_bytes()));
        *n += 1;
    }
}

/// Loads a fingerprint baseline file (`reports/lint_baseline.json`):
/// every quoted 16-hex-digit string in the file is an entry, so the
/// hand-rolled JSON the workspace writes is parsed without a JSON
/// reader. Unknown text is ignored.
pub fn load_baseline(path: &Path) -> io::Result<BTreeSet<String>> {
    let src = fs::read_to_string(path)?;
    let mut out = BTreeSet::new();
    for piece in src.split('"') {
        if piece.len() == 16 && piece.bytes().all(|b| b.is_ascii_hexdigit()) {
            out.insert(piece.to_owned());
        }
    }
    Ok(out)
}

/// Lints the workspace rooted at `root` (the directory holding the
/// top-level `Cargo.toml`). Scans every `.rs` file under it except
/// `target/`, VCS metadata, and `tests/` directories (integration tests
/// and fixtures are test code by construction).
pub fn lint_workspace(root: &Path) -> io::Result<LintReport> {
    let mut files = Vec::new();
    collect_rs_files(root, &mut files)?;
    files.sort();

    let mut report = LintReport::default();
    for file in &files {
        let rel = relative_path(root, file);
        let src = fs::read_to_string(file)?;
        report.files_scanned += 1;
        lint_file(&rel, &src, &mut report);
    }
    finalize(&mut report);
    Ok(report)
}

/// Lints a single in-memory source file as if it lived at the
/// workspace-relative path `rel` (path scoping — which rules apply —
/// follows `rel`). This is the mutation-testing entry point: seed a
/// defect into a copy of a real file and assert the analyzer catches
/// it, without touching the tree.
pub fn lint_source(rel: &str, src: &str) -> LintReport {
    let mut report = LintReport { files_scanned: 1, ..LintReport::default() };
    lint_file(rel, src, &mut report);
    finalize(&mut report);
    report
}

fn relative_path(root: &Path, file: &Path) -> String {
    let rel = file.strip_prefix(root).unwrap_or(file);
    let parts: Vec<String> =
        rel.components().map(|c| c.as_os_str().to_string_lossy().into_owned()).collect();
    parts.join("/")
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let skip = ["target", "tests", ".git", "node_modules"];
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name().to_string_lossy().into_owned();
        if path.is_dir() {
            if !skip.contains(&name.as_str()) && !name.starts_with('.') {
                collect_rs_files(&path, out)?;
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Path scoping: which crates the panic-hygiene rule covers (library
/// crates whose panics would take down an experiment mid-run).
const P1_SCOPES: &[&str] = &[
    "crates/core/src/",
    "crates/metrics/src/",
    "crates/simnet/src/",
    "crates/power/src/",
    "crates/workload/src/",
    "crates/rng/src/",
    "crates/lint/src/",
    "crates/obs/src/",
    "crates/store/src/",
    "src/",
];

/// The one module allowed to touch `std::thread`: the deterministic
/// work-stealing pool every parallel schedule goes through.
const D3_EXEMPT: &str = "crates/bench/src/pool.rs";

/// The event-scheduler hot path. Its bucket drain order — and with it
/// every simulation result — is only deterministic single-threaded, so
/// D3 calls the module out by name instead of the generic message.
const D3_SCHED_MODULE: &str = "crates/simnet/src/sched.rs";

/// Where the unit-safety rule applies: the crate whose whole point is
/// that quantities carry units.
const N2_SCOPE: &str = "crates/metrics/src/";

fn lint_file(rel: &str, src: &str, report: &mut LintReport) {
    // One lexer pass feeds both layers: the line rules see the masked
    // projection, the S-family tree rules see the tokens themselves.
    let tokens = lex(src);
    let lines = scan_tokens(src, &tokens);

    check_h1(rel, src, report);

    // Resolve each allow to the line it governs: its own line if that
    // line has code, otherwise the next line carrying code.
    let mut allows: Vec<(usize, usize, crate::rules::Allow)> = Vec::new();
    for (idx, line) in lines.iter().enumerate() {
        for allow in parse_allows(&line.comment) {
            let target = if line.code.trim().is_empty() {
                lines[idx + 1..]
                    .iter()
                    .position(|l| !l.code.trim().is_empty())
                    .map_or(idx, |off| idx + 1 + off)
            } else {
                idx
            };
            if !allow.has_reason {
                report.findings.push(Finding {
                    rule: "A1",
                    severity: Severity::Deny,
                    path: rel.to_owned(),
                    line: idx + 1,
                    message: format!(
                        "allow({}) without a reason: suppressions must say why",
                        allow.rule
                    ),
                    snippet: snippet_at(src, idx),
                    fingerprint: String::new(),
                    legacy: false,
                });
            }
            if rule(&allow.rule).is_none() {
                report.findings.push(Finding {
                    rule: "A1",
                    severity: Severity::Deny,
                    path: rel.to_owned(),
                    line: idx + 1,
                    message: format!("allow({}) names no rule in the catalog", allow.rule),
                    snippet: snippet_at(src, idx),
                    fingerprint: String::new(),
                    legacy: false,
                });
            }
            allows.push((target, idx, allow));
        }
    }

    // Raw findings from every rule, then one resolution pass against
    // the allows (which also learns which suppressions were *used* —
    // the A2 input).
    let mut raw: Vec<(usize, &'static str, String)> = Vec::new();
    let mut emit = |line_idx: usize, rule_id: &'static str, message: String| {
        raw.push((line_idx, rule_id, message));
    };

    for (idx, line) in lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        let code = line.code.as_str();
        if code.trim().is_empty() {
            continue;
        }

        // D1 — unordered containers.
        for container in ["HashMap", "HashSet"] {
            if has_token(code, container) {
                emit(idx, "D1", format!("{container} in non-test code"));
            }
        }

        // D2 — wall-clock reads.
        if code.contains("Instant::now") || has_token(code, "SystemTime") {
            emit(idx, "D2", "wall-clock read in non-test code".to_owned());
        }

        // D3 — raw threads outside the pool.
        if rel != D3_EXEMPT && (code.contains("thread::spawn") || code.contains("std::thread")) {
            let message = if rel == D3_SCHED_MODULE {
                "raw std::thread in the event scheduler: timing-wheel bucket order is only \
                 deterministic single-threaded"
                    .to_owned()
            } else {
                "raw std::thread outside the deterministic pool".to_owned()
            };
            emit(idx, "D3", message);
        }

        // P1 — panic hygiene in library crates.
        if P1_SCOPES.iter().any(|s| rel.starts_with(s)) {
            for pat in ["unwrap()", "expect(", "panic!"] {
                if code.contains(pat) {
                    emit(idx, "P1", format!("`{pat}` in library non-test code"));
                }
            }
        }

        // N1 — float-literal equality.
        if float_literal_comparison(code) {
            emit(idx, "N1", "==/!= against a float literal".to_owned());
        }

        // N2 — raw f64 crossing the metrics API boundary.
        if rel.starts_with(N2_SCOPE) && is_pub_fn_line(code) {
            let sig = collect_signature(&lines, idx);
            if has_token(&sig, "f64") && !returns_newtype(&sig) {
                emit(
                    idx,
                    "N2",
                    "raw f64 in a public metrics signature (not a unit constructor)".to_owned(),
                );
            }
        }
    }

    // S1/S2/S3 — the shard-safety rules over the token tree (DESIGN.md
    // §11), fed through the same suppression machinery.
    let test_lines: Vec<bool> = lines.iter().map(|l| l.in_test).collect();
    for tf in crate::taint::analyze(rel, &tokens, &test_lines) {
        emit(tf.line, tf.rule, tf.message);
    }

    // Resolution: suppress reasoned allows, record which were used.
    let mut used = vec![false; allows.len()];
    for (line_idx, rule_id, message) in raw {
        let hit = allows
            .iter()
            .position(|(target, _, a)| *target == line_idx && a.rule == rule_id && a.has_reason);
        if let Some(ai) = hit {
            used[ai] = true;
            report.suppressed += 1;
            continue;
        }
        let severity = match rule(rule_id) {
            Some(r) => r.severity,
            None => Severity::Deny,
        };
        report.findings.push(Finding {
            rule: rule_id,
            severity,
            path: rel.to_owned(),
            line: line_idx + 1,
            message,
            snippet: snippet_at(src, line_idx),
            fingerprint: String::new(),
            legacy: false,
        });
    }

    // A2 — stale suppressions: a reasoned allow of a real rule that
    // matched nothing is a claim with no referent; delete it.
    for (ai, (_, allow_line, allow)) in allows.iter().enumerate() {
        if allow.has_reason && rule(&allow.rule).is_some() && !used[ai] {
            report.findings.push(Finding {
                rule: "A2",
                severity: Severity::Warn,
                path: rel.to_owned(),
                line: allow_line + 1,
                message: format!("stale suppression: allow({}) matched no finding", allow.rule),
                snippet: snippet_at(src, *allow_line),
                fingerprint: String::new(),
                legacy: false,
            });
        }
    }
}

/// H1: crate roots must pin the hygiene attributes. Library roots need
/// both `#![forbid(unsafe_code)]` and `#![deny(missing_docs)]`; binary
/// roots (no public API surface) need the unsafe ban only.
fn check_h1(rel: &str, src: &str, report: &mut LintReport) {
    let is_lib_root = rel == "src/lib.rs" || rel.ends_with("/src/lib.rs");
    let is_bin_root = rel == "src/main.rs" || rel.ends_with("/src/main.rs");
    if !is_lib_root && !is_bin_root {
        return;
    }
    let mut required = vec!["#![forbid(unsafe_code)]"];
    if is_lib_root {
        required.push("#![deny(missing_docs)]");
    }
    for attr in required {
        if !src.contains(attr) {
            report.findings.push(Finding {
                rule: "H1",
                severity: Severity::Deny,
                path: rel.to_owned(),
                line: 1,
                message: format!("crate root missing `{attr}`"),
                snippet: src.lines().next().unwrap_or_default().trim().to_owned(),
                fingerprint: String::new(),
                legacy: false,
            });
        }
    }
}

fn snippet_at(src: &str, line_idx: usize) -> String {
    src.lines().nth(line_idx).map(str::trim).unwrap_or_default().to_owned()
}

fn is_pub_fn_line(code: &str) -> bool {
    let t = code.trim_start();
    t.starts_with("pub fn ") || t.starts_with("pub const fn ")
}

/// Joins a (possibly multi-line) `fn` signature: everything from the
/// `pub fn` line up to its body brace or terminating semicolon.
fn collect_signature(lines: &[ScannedLine], start: usize) -> String {
    let mut sig = String::new();
    for line in lines.iter().skip(start).take(12) {
        let code = line.code.as_str();
        let end = code.find(['{', ';']).unwrap_or(code.len());
        sig.push_str(&code[..end]);
        sig.push(' ');
        if end < code.len() {
            break;
        }
    }
    sig
}

/// A signature returning `Quantity` (or `Self` on `Quantity` impls) is
/// a sanctioned constructor *into* the unit system, not a bypass.
fn returns_newtype(sig: &str) -> bool {
    match sig.split_once("->") {
        Some((_, ret)) => has_token(ret, "Quantity") || has_token(ret, "Self"),
        None => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint_src(rel: &str, src: &str) -> LintReport {
        lint_source(rel, src)
    }

    #[test]
    fn d1_fires_outside_tests_only() {
        let src = "use std::collections::HashMap;\n#[cfg(test)]\nmod tests {\n    use std::collections::HashMap;\n}\n";
        let r = lint_src("crates/simnet/src/x.rs", src);
        let d1: Vec<_> = r.findings.iter().filter(|f| f.rule == "D1").collect();
        assert_eq!(d1.len(), 1);
        assert_eq!(d1[0].line, 1);
    }

    #[test]
    fn reasoned_allow_suppresses_and_counts() {
        let src = "// lint: allow(D1, reason = \"drained in sorted order below\")\nuse std::collections::HashMap;\n";
        let r = lint_src("crates/simnet/src/x.rs", src);
        assert!(r.findings.iter().all(|f| f.rule != "D1"), "{:?}", r.findings);
        assert_eq!(r.suppressed, 1);
    }

    #[test]
    fn unreasoned_allow_is_a1_and_does_not_suppress() {
        let src = "use std::collections::HashMap; // lint: allow(D1)\n";
        let r = lint_src("crates/simnet/src/x.rs", src);
        let rules: Vec<_> = r.findings.iter().map(|f| f.rule).collect();
        assert!(rules.contains(&"A1"));
        assert!(rules.contains(&"D1"), "unreasoned allow must not suppress");
    }

    #[test]
    fn p1_is_scoped_to_library_crates() {
        let src = "fn f() { x.unwrap(); }\n";
        assert_eq!(lint_src("crates/core/src/x.rs", src).deny_count(), 1);
        assert_eq!(lint_src("crates/bench/src/x.rs", src).deny_count(), 0);
    }

    #[test]
    fn d3_exempts_the_pool() {
        let src = "fn f() { std::thread::scope(|s| {}); }\n";
        assert_eq!(lint_src("crates/bench/src/pool.rs", src).deny_count(), 0);
        assert_eq!(lint_src("crates/bench/src/other.rs", src).deny_count(), 1);
    }

    #[test]
    fn d3_names_the_scheduler_module() {
        let src = "fn f() { std::thread::spawn(|| {}); }\n";
        let r = lint_src("crates/simnet/src/sched.rs", src);
        let d3: Vec<_> = r.findings.iter().filter(|f| f.rule == "D3").collect();
        assert_eq!(d3.len(), 1);
        assert!(
            d3[0].message.contains("event scheduler") && d3[0].message.contains("bucket order"),
            "generic message on the scheduler module: {}",
            d3[0].message
        );
        // Everywhere else keeps the generic phrasing.
        let other = lint_src("crates/bench/src/other.rs", src);
        assert!(other
            .findings
            .iter()
            .any(|f| f.message.contains("outside the deterministic pool")));
    }

    #[test]
    fn n2_exempts_unit_constructors() {
        let ctor = "pub fn watts(v: f64) -> Quantity {\n";
        assert_eq!(lint_src("crates/metrics/src/q.rs", ctor).deny_count(), 0);
        let escape = "pub fn value(self) -> f64 {\n";
        assert_eq!(lint_src("crates/metrics/src/q.rs", escape).deny_count(), 1);
        // Outside metrics the rule does not apply at all.
        assert_eq!(lint_src("crates/core/src/q.rs", escape).deny_count(), 0);
    }

    #[test]
    fn n2_sees_multiline_signatures() {
        let src = "pub fn combine(\n    a: Quantity,\n    factor: f64,\n) -> Option<Ordering> {\n    body()\n}\n";
        assert_eq!(lint_src("crates/metrics/src/q.rs", src).deny_count(), 1);
    }

    #[test]
    fn h1_checks_crate_roots_only() {
        let bare = "pub fn x() {}\n";
        let r = lint_src("crates/foo/src/lib.rs", bare);
        assert_eq!(r.findings.iter().filter(|f| f.rule == "H1").count(), 2);
        let ok = "#![forbid(unsafe_code)]\n#![deny(missing_docs)]\npub fn x() {}\n";
        assert_eq!(lint_src("crates/foo/src/lib.rs", ok).deny_count(), 0);
        assert_eq!(lint_src("crates/foo/src/util.rs", bare).deny_count(), 0);
    }

    #[test]
    fn rendering_has_the_advertised_shape() {
        let src = "use std::collections::HashSet;\n";
        let r = lint_src("crates/simnet/src/x.rs", src);
        let human = r.render();
        assert!(human.contains("crates/simnet/src/x.rs:1 [D1/deny]"), "{human}");
        let json = r.to_json().render();
        for key in ["\"tool\"", "\"schema_version\"", "\"findings\"", "\"deny\"", "\"rule\""] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }
}
