//! Conversion and unit-safety tests for the metrics crate, from the
//! outside: round trips through quantity constructors, unit
//! conversions, and pricing models, plus the contract that cross-unit
//! mistakes surface as `Err` values — never panics — on every checked
//! API.

use apples_metrics::pricing::{BomItem, PricingError, PricingModel};
use apples_metrics::quantity::{
    bps, cores, dollars, gbps, joules, mbps, micros, mpps, nanos, pps, seconds, watts,
    watts_to_btu_per_hour, QuantityError,
};
use apples_metrics::{Quantity, Unit};

// ---------------------------------------------------------------------
// Round trips: scaled constructors against their base unit.
// ---------------------------------------------------------------------

#[test]
fn rate_constructors_round_trip_through_base_units() {
    assert_eq!(gbps(10.0), bps(10e9));
    assert_eq!(mbps(250.0), bps(250e6));
    assert_eq!(mpps(14.88), pps(14.88e6));
    // Scale down and back up: exact powers of two survive bit-for-bit.
    let q = gbps(8.0);
    assert_eq!((q / 4.0) * 4.0, q);
}

#[test]
fn time_constructors_round_trip_through_seconds() {
    assert_eq!(micros(1.5).unit(), Unit::Seconds);
    assert!((micros(1.5).value() - 1.5e-6).abs() < 1e-18);
    assert!((nanos(1_500.0).value() - micros(1.5).value()).abs() < 1e-18);
    assert!(micros(1.5).approx_eq(nanos(1_500.0), 1e-12));
}

#[test]
fn ratio_inverts_scale() {
    // value -> scale by k -> ratio against the original == k.
    let base = watts(37.5);
    let scaled = base.scale(4.0);
    assert!((scaled.ratio_to(base).unwrap() - 4.0).abs() < 1e-12);
    // And subtraction undoes addition in the same unit.
    let diff = scaled.checked_sub(base).unwrap();
    assert_eq!(diff.checked_add(base).unwrap(), scaled);
}

#[test]
fn heat_conversion_is_consistent_with_addition() {
    // Convert-then-add equals add-then-convert: the conversion is
    // linear, so the diagram commutes.
    let a = watts(60.0);
    let b = watts(40.0);
    let converted_sum = watts_to_btu_per_hour(a.checked_add(b).unwrap()).unwrap();
    let summed_conversions =
        watts_to_btu_per_hour(a).unwrap().checked_add(watts_to_btu_per_hour(b).unwrap()).unwrap();
    assert!(converted_sum.approx_eq(summed_conversions, 1e-12));
    assert_eq!(converted_sum.unit(), Unit::BtuPerHour);
}

// ---------------------------------------------------------------------
// Unit mismatches are errors, not panics.
// ---------------------------------------------------------------------

#[test]
fn checked_arithmetic_rejects_every_cross_unit_pair() {
    let quantities =
        [gbps(1.0), pps(1.0), seconds(1.0), watts(1.0), joules(1.0), cores(1.0), dollars(1.0)];
    for (i, &a) in quantities.iter().enumerate() {
        for (j, &b) in quantities.iter().enumerate() {
            if i == j {
                assert!(a.checked_add(b).is_ok(), "same-unit add must work: {a}");
                assert!(a.checked_sub(b).is_ok(), "same-unit sub must work: {a}");
                assert!(a.partial_cmp_checked(b).is_some());
            } else {
                let err = a.checked_add(b).unwrap_err();
                assert!(
                    matches!(err, QuantityError::UnitMismatch { .. }),
                    "expected UnitMismatch for {a} + {b}, got {err:?}"
                );
                assert!(a.checked_sub(b).is_err());
                assert!(a.ratio_to(b).is_err());
                assert!(a.partial_cmp_checked(b).is_none());
                assert!(!a.approx_eq(b, 1.0), "cross-unit approx_eq must be false");
            }
        }
    }
}

#[test]
fn mismatch_errors_name_both_units() {
    let err = watts(1.0).checked_add(gbps(1.0)).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("W") && msg.contains("bit/s"), "unhelpful message: {msg}");
}

#[test]
fn non_finite_results_are_errors_not_panics() {
    assert_eq!(gbps(0.0).ratio_to(gbps(0.0)).unwrap_err(), QuantityError::NotFinite);
    let huge = Quantity::new(f64::MAX, Unit::Watts);
    assert_eq!(huge.checked_add(huge).unwrap_err(), QuantityError::NotFinite);
}

#[test]
fn heat_conversion_rejects_non_power_inputs() {
    for q in [gbps(1.0), seconds(1.0), dollars(1.0)] {
        let err = watts_to_btu_per_hour(q).unwrap_err();
        assert!(matches!(err, QuantityError::UnitMismatch { right: Unit::Watts, .. }), "{err:?}");
    }
}

// ---------------------------------------------------------------------
// Pricing model round trips and error paths.
// ---------------------------------------------------------------------

#[test]
fn tco_decomposes_into_capex_and_opex() {
    let model = PricingModel::campus_testbed_2023();
    let bom = [BomItem::new("xeon-server-16c", 1), BomItem::new("smartnic-100g", 2)];
    let power = watts(350.0);
    let capex = model.capex(&bom).unwrap();
    let opex = model.yearly_opex(power).unwrap();
    let tco = model.yearly_tco(&bom, power).unwrap();
    assert_eq!(capex.unit(), Unit::Dollars);
    let rebuilt = capex.value() / model.amortization_years + opex.value();
    assert!((tco.value() - rebuilt).abs() < 1e-9, "tco {} vs rebuilt {rebuilt}", tco.value());
    assert!(tco.value() > 0.0);
}

#[test]
fn same_deployment_prices_differently_across_released_models() {
    // The paper's point about raw TCO: both models are internally
    // consistent, and they disagree — context dependence made concrete.
    let bom = [BomItem::new("tofino-switch-32x100g", 1)];
    let power = watts(450.0);
    let campus = PricingModel::campus_testbed_2023().yearly_tco(&bom, power).unwrap();
    let hyper = PricingModel::hyperscaler_2023().yearly_tco(&bom, power).unwrap();
    assert!(campus.value() > hyper.value(), "bulk pricing must be cheaper");
    // Same units though: the *metric* is shared even when values differ.
    assert_eq!(campus.unit(), hyper.unit());
}

#[test]
fn pricing_errors_are_values_not_panics() {
    let model = PricingModel::campus_testbed_2023();
    let err = model.capex(&[BomItem::new("quantum-nic-900g", 1)]).unwrap_err();
    assert_eq!(err, PricingError::UnknownPart("quantum-nic-900g".to_owned()));
    assert!(err.to_string().contains("quantum-nic-900g"));

    let err = model.yearly_opex(gbps(10.0)).unwrap_err();
    assert_eq!(err, PricingError::NotPower(Unit::BitsPerSecond));

    // One bad part poisons the whole BOM, by name.
    let err = model
        .yearly_tco(&[BomItem::new("xeon-core", 2), BomItem::new("abacus", 1)], watts(10.0))
        .unwrap_err();
    assert_eq!(err, PricingError::UnknownPart("abacus".to_owned()));
}

#[test]
fn zero_anchor_holds_for_every_released_model() {
    for model in [PricingModel::campus_testbed_2023(), PricingModel::hyperscaler_2023()] {
        assert_eq!(model.zero(), dollars(0.0), "model {}", model.name);
    }
}
