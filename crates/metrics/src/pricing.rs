//! Released pricing models: the §3.1 context-independent stand-in for TCO.
//!
//! TCO is "the cost metric that companies care most about" but is
//! context-dependent (purchase discounts, energy prices, land costs vary
//! by organization, location, and time). §3.1's proposed fix is to
//! *release the pricing model* used to compute the TCO so that anyone can
//! recompute it for their own context — and recompute other systems' TCO
//! under the *same* model, restoring comparability.
//!
//! [`PricingModel`] is that released artifact: a price list, an energy
//! tariff, facility overheads, and an amortization horizon. Given a bill
//! of materials and a steady-state power draw it produces a reproducible
//! dollar figure. Two evaluators sharing a `PricingModel` will compute
//! identical TCOs for identical deployments, which is exactly the
//! paper's definition of context-independence.

use crate::quantity::{dollars, watts, Quantity};
use crate::unit::Unit;
use std::collections::BTreeMap;
use std::fmt;

/// A line item in a system's bill of materials.
#[derive(Debug, Clone, PartialEq)]
pub struct BomItem {
    /// Part identifier; must exist in the model's price list.
    pub part: String,
    /// Number of units of the part.
    pub quantity: u32,
}

impl BomItem {
    /// Convenience constructor.
    pub fn new(part: impl Into<String>, quantity: u32) -> Self {
        BomItem { part: part.into(), quantity }
    }
}

/// A released pricing model (§3.1).
///
/// All parameters are explicit so the model can be published verbatim;
/// the struct is plain data, easy to emit as CSV/JSON for that purpose.
///
/// # Examples
///
/// ```
/// use apples_metrics::pricing::{BomItem, PricingModel};
/// use apples_metrics::quantity::watts;
///
/// let model = PricingModel::campus_testbed_2023();
/// let bom = [BomItem::new("xeon-server-16c", 1), BomItem::new("smartnic-100g", 1)];
/// let tco = model.yearly_tco(&bom, watts(75.0)).unwrap();
/// // Anyone holding the same released model computes the same dollars.
/// assert_eq!(tco, PricingModel::campus_testbed_2023().yearly_tco(&bom, watts(75.0)).unwrap());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PricingModel {
    /// Human-readable model name, e.g. `"campus-testbed-2023"`.
    pub name: String,
    /// Unit purchase price per part, in dollars.
    pub price_list: BTreeMap<String, f64>,
    /// Energy tariff in dollars per kWh.
    pub dollars_per_kwh: f64,
    /// Facility overhead (space, cooling, administration) in dollars per
    /// watt of provisioned power per year.
    pub facility_dollars_per_watt_year: f64,
    /// Power usage effectiveness (total facility power / IT power), ≥ 1.
    pub pue: f64,
    /// Hardware amortization horizon in years.
    pub amortization_years: f64,
}

/// Error computing a TCO.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PricingError {
    /// A bill-of-materials part is missing from the price list.
    UnknownPart(String),
    /// The power quantity was not in watts.
    NotPower(Unit),
}

impl fmt::Display for PricingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PricingError::UnknownPart(p) => write!(f, "part '{p}' is not in the price list"),
            PricingError::NotPower(u) => write!(f, "expected a power in watts, got {u}"),
        }
    }
}

impl std::error::Error for PricingError {}

impl PricingModel {
    /// A representative published model for a university testbed.
    ///
    /// The constants are synthetic but in realistic ranges (2023 US
    /// retail prices, $0.12/kWh, PUE 1.5, 4-year amortization). Being a
    /// *released* model, the exact values matter less than the fact that
    /// everyone computing against it gets the same answer.
    pub fn campus_testbed_2023() -> Self {
        let mut price_list = BTreeMap::new();
        price_list.insert("xeon-server-16c".to_owned(), 6_500.0);
        price_list.insert("xeon-core".to_owned(), 406.25); // per-core slice of the above
        price_list.insert("dumb-nic-100g".to_owned(), 450.0);
        price_list.insert("smartnic-100g".to_owned(), 2_200.0);
        price_list.insert("fpga-nic-100g".to_owned(), 5_800.0);
        price_list.insert("tofino-switch-32x100g".to_owned(), 18_000.0);
        price_list.insert("gpu-t4".to_owned(), 2_400.0);
        price_list.insert("dram-16gb".to_owned(), 55.0);
        PricingModel {
            name: "campus-testbed-2023".to_owned(),
            price_list,
            dollars_per_kwh: 0.12,
            facility_dollars_per_watt_year: 2.0,
            pue: 1.5,
            amortization_years: 4.0,
        }
    }

    /// A second released model with hyperscaler-style bulk pricing, used
    /// in tests and experiments to demonstrate *why* raw TCO is
    /// context-dependent: the same deployment costs different amounts
    /// under different (equally valid) models.
    pub fn hyperscaler_2023() -> Self {
        let mut m = PricingModel::campus_testbed_2023();
        m.name = "hyperscaler-2023".to_owned();
        for price in m.price_list.values_mut() {
            *price *= 0.55; // bulk discount
        }
        m.dollars_per_kwh = 0.05; // wholesale energy
        m.facility_dollars_per_watt_year = 1.1;
        m.pue = 1.1;
        m.amortization_years = 3.0;
        m
    }

    /// Capital expense of a bill of materials under this model.
    pub fn capex(&self, bom: &[BomItem]) -> Result<Quantity, PricingError> {
        let mut total = 0.0;
        for item in bom {
            let unit_price = self
                .price_list
                .get(&item.part)
                .ok_or_else(|| PricingError::UnknownPart(item.part.clone()))?;
            total += unit_price * f64::from(item.quantity);
        }
        Ok(dollars(total))
    }

    /// Yearly operational expense for a steady-state IT power draw.
    pub fn yearly_opex(&self, power: Quantity) -> Result<Quantity, PricingError> {
        if power.unit() != Unit::Watts {
            return Err(PricingError::NotPower(power.unit()));
        }
        let it_watts = power.value();
        let facility_watts = it_watts * self.pue;
        let kwh_per_year = facility_watts * 24.0 * 365.0 / 1000.0;
        let energy = kwh_per_year * self.dollars_per_kwh;
        let facility = it_watts * self.facility_dollars_per_watt_year;
        Ok(dollars(energy + facility))
    }

    /// Amortized yearly TCO = capex / amortization + yearly opex.
    pub fn yearly_tco(&self, bom: &[BomItem], power: Quantity) -> Result<Quantity, PricingError> {
        let capex = self.capex(bom)?;
        let opex = self.yearly_opex(power)?;
        Ok(dollars(capex.value() / self.amortization_years + opex.value()))
    }

    /// Demonstration helper: the zero-power, empty-BOM TCO is zero under
    /// every model (sanity anchor for property tests).
    pub fn zero(&self) -> Quantity {
        // lint: allow(P1, reason = "invariant: the empty BOM at zero watts has no failing component; exercised by the pricing property tests")
        self.yearly_tco(&[], watts(0.0)).expect("zero TCO is computable")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quantity::gbps;

    fn server_bom() -> Vec<BomItem> {
        vec![BomItem::new("xeon-server-16c", 1), BomItem::new("dumb-nic-100g", 1)]
    }

    #[test]
    fn capex_sums_price_list_entries() {
        let m = PricingModel::campus_testbed_2023();
        let c = m.capex(&server_bom()).unwrap();
        assert!((c.value() - 6_950.0).abs() < 1e-9);
    }

    #[test]
    fn unknown_part_is_an_error() {
        let m = PricingModel::campus_testbed_2023();
        let err = m.capex(&[BomItem::new("quantum-nic", 1)]).unwrap_err();
        assert_eq!(err, PricingError::UnknownPart("quantum-nic".to_owned()));
    }

    #[test]
    fn opex_accounts_for_pue_and_facility() {
        let m = PricingModel::campus_testbed_2023();
        let o = m.yearly_opex(watts(100.0)).unwrap();
        // 100 W * 1.5 PUE = 150 W -> 1314 kWh/yr * 0.12 = 157.68
        // facility: 100 W * 2.0 = 200. total = 357.68
        assert!((o.value() - 357.68).abs() < 0.01, "got {}", o.value());
    }

    #[test]
    fn opex_rejects_non_power() {
        let m = PricingModel::campus_testbed_2023();
        assert!(matches!(m.yearly_opex(gbps(1.0)), Err(PricingError::NotPower(_))));
    }

    #[test]
    fn tco_is_capex_amortized_plus_opex() {
        let m = PricingModel::campus_testbed_2023();
        let tco = m.yearly_tco(&server_bom(), watts(100.0)).unwrap();
        let expected = 6_950.0 / 4.0 + 357.68;
        assert!((tco.value() - expected).abs() < 0.01);
    }

    #[test]
    fn same_deployment_same_model_same_tco() {
        // The §3.1 point: with a released model, TCO is reproducible.
        let a = PricingModel::campus_testbed_2023();
        let b = PricingModel::campus_testbed_2023();
        let ta = a.yearly_tco(&server_bom(), watts(120.0)).unwrap();
        let tb = b.yearly_tco(&server_bom(), watts(120.0)).unwrap();
        assert_eq!(ta, tb);
    }

    #[test]
    fn different_models_disagree_demonstrating_context_dependence() {
        let campus = PricingModel::campus_testbed_2023();
        let hyper = PricingModel::hyperscaler_2023();
        let tc = campus.yearly_tco(&server_bom(), watts(120.0)).unwrap();
        let th = hyper.yearly_tco(&server_bom(), watts(120.0)).unwrap();
        assert!(th.value() < tc.value(), "bulk pricing should be cheaper");
    }

    #[test]
    fn zero_anchor() {
        assert_eq!(PricingModel::campus_testbed_2023().zero().value(), 0.0);
        assert_eq!(PricingModel::hyperscaler_2023().zero().value(), 0.0);
    }
}
