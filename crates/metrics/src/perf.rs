//! Performance metric descriptors and values.

use crate::direction::{Direction, Scalability};
use crate::quantity::Quantity;
use crate::unit::Unit;
use std::fmt;

/// A performance metric: what is measured, which way it improves, and
/// whether horizontal scaling improves it (§4.3).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PerfMetric {
    name: &'static str,
    unit: Unit,
    direction: Direction,
    scalability: Scalability,
}

impl PerfMetric {
    /// Defines a custom performance metric.
    pub const fn new(
        name: &'static str,
        unit: Unit,
        direction: Direction,
        scalability: Scalability,
    ) -> Self {
        PerfMetric { name, unit, direction, scalability }
    }

    /// Data-rate throughput in bits per second (scalable, higher better).
    pub const fn throughput_bps() -> Self {
        PerfMetric::new(
            "throughput",
            Unit::BitsPerSecond,
            Direction::HigherIsBetter,
            Scalability::Scalable,
        )
    }

    /// Packet-rate throughput (RFC 2544 minimum-size-packet tests).
    pub const fn throughput_pps() -> Self {
        PerfMetric::new(
            "packet rate",
            Unit::PacketsPerSecond,
            Direction::HigherIsBetter,
            Scalability::Scalable,
        )
    }

    /// End-to-end latency. Non-scalable: replicating a system does not
    /// push latency below its unloaded floor (§4.3 footnote 4).
    pub const fn latency() -> Self {
        PerfMetric::new(
            "latency",
            Unit::Seconds,
            Direction::LowerIsBetter,
            Scalability::NonScalable,
        )
    }

    /// 99th-percentile latency; same scalability caveat as mean latency.
    pub const fn p99_latency() -> Self {
        PerfMetric::new(
            "p99 latency",
            Unit::Seconds,
            Direction::LowerIsBetter,
            Scalability::NonScalable,
        )
    }

    /// Packet-loss fraction in `[0, 1]` (lower is better, scalable — more
    /// capacity sheds load).
    pub const fn loss_rate() -> Self {
        PerfMetric::new("loss rate", Unit::Ratio, Direction::LowerIsBetter, Scalability::Scalable)
    }

    /// Jain's fairness index in `(0, 1]`. Explicitly called out by §4.3
    /// (citing Jain et al. 1984) as a metric that does not scale.
    pub const fn jains_fairness_index() -> Self {
        PerfMetric::new(
            "Jain's fairness index",
            Unit::Ratio,
            Direction::HigherIsBetter,
            Scalability::NonScalable,
        )
    }

    /// The metric's human-readable name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The unit measurements must be expressed in.
    pub fn unit(&self) -> Unit {
        self.unit
    }

    /// Which way the metric improves.
    pub fn direction(&self) -> Direction {
        self.direction
    }

    /// Whether horizontal scaling improves the metric.
    pub fn scalability(&self) -> Scalability {
        self.scalability
    }

    /// Wraps a raw measurement, checking the unit.
    pub fn value(&self, q: Quantity) -> PerfValue {
        assert_eq!(
            q.unit(),
            self.unit,
            "measurement unit {} does not match metric '{}' ({})",
            q.unit(),
            self.name,
            self.unit
        );
        PerfValue { metric: self.clone(), quantity: q }
    }
}

impl fmt::Display for PerfMetric {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}]", self.name, self.unit)
    }
}

/// A measured performance value tagged with its metric.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfValue {
    metric: PerfMetric,
    quantity: Quantity,
}

impl PerfValue {
    /// The metric this value measures.
    pub fn metric(&self) -> &PerfMetric {
        &self.metric
    }

    /// The measured quantity.
    pub fn quantity(&self) -> Quantity {
        self.quantity
    }

    /// True when `self` is strictly better than `other` under the
    /// metric's direction. Panics if the metrics differ — comparing
    /// latency against throughput is a category error the caller must
    /// not make.
    pub fn is_better_than(&self, other: &PerfValue) -> bool {
        self.assert_same_metric(other);
        self.metric.direction.is_better(self.quantity.value(), other.quantity.value())
    }

    /// True when `self` is at least as good as `other`.
    pub fn is_at_least_as_good_as(&self, other: &PerfValue) -> bool {
        self.assert_same_metric(other);
        self.metric.direction.is_at_least_as_good(self.quantity.value(), other.quantity.value())
    }

    /// True when the two values are equal within `rel_tol` (used by
    /// operating-regime detection).
    // lint: allow(N2, reason = "rel_tol is a dimensionless tolerance, not a measurement")
    pub fn approx_eq(&self, other: &PerfValue, rel_tol: f64) -> bool {
        self.metric == other.metric && self.quantity.approx_eq(other.quantity, rel_tol)
    }

    fn assert_same_metric(&self, other: &PerfValue) {
        assert_eq!(
            self.metric, other.metric,
            "cannot compare values of different performance metrics: '{}' vs '{}'",
            self.metric.name, other.metric.name
        );
    }
}

impl fmt::Display for PerfValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}={}", self.metric.name, self.quantity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quantity::{gbps, micros, ratio};

    #[test]
    fn throughput_direction_and_scalability() {
        let m = PerfMetric::throughput_bps();
        assert_eq!(m.direction(), Direction::HigherIsBetter);
        assert!(m.scalability().is_scalable());
    }

    #[test]
    fn latency_is_non_scalable_lower_better() {
        let m = PerfMetric::latency();
        assert_eq!(m.direction(), Direction::LowerIsBetter);
        assert!(!m.scalability().is_scalable());
    }

    #[test]
    fn jfi_is_non_scalable() {
        assert!(!PerfMetric::jains_fairness_index().scalability().is_scalable());
    }

    #[test]
    fn value_comparisons_follow_direction() {
        let m = PerfMetric::throughput_bps();
        assert!(m.value(gbps(20.0)).is_better_than(&m.value(gbps(10.0))));
        let l = PerfMetric::latency();
        assert!(l.value(micros(5.0)).is_better_than(&l.value(micros(10.0))));
        assert!(l.value(micros(5.0)).is_at_least_as_good_as(&l.value(micros(5.0))));
    }

    #[test]
    #[should_panic(expected = "unit")]
    fn wrong_unit_rejected() {
        let _ = PerfMetric::throughput_bps().value(micros(5.0));
    }

    #[test]
    #[should_panic(expected = "different performance metrics")]
    fn cross_metric_comparison_rejected() {
        let t = PerfMetric::loss_rate().value(ratio(0.0));
        let j = PerfMetric::jains_fairness_index().value(ratio(1.0));
        let _ = t.is_better_than(&j);
    }

    #[test]
    fn display_formats() {
        assert_eq!(PerfMetric::latency().to_string(), "latency [s]");
        let v = PerfMetric::throughput_bps().value(gbps(10.0));
        assert_eq!(v.to_string(), "throughput=10.000 Gbit/s");
    }
}
