//! Cost metrics and the paper's three properties (§3, Principles 1–3).
//!
//! A [`CostMetric`] records whether it is context-independent (P1),
//! quantifiable (P2), and which device classes it can cover (the input to
//! the end-to-end coverage check, P3). [`validate_cost_metric`] turns
//! those properties into concrete [`PrincipleViolation`] diagnostics for
//! a specific comparison, so an evaluation can refuse — or at least
//! flag — an unfair metric choice before producing numbers.

use crate::direction::Direction;
use crate::quantity::Quantity;
use crate::unit::Unit;
use std::fmt;

/// The broad classes of processing hardware that appear in
/// accelerator-based systems. Used to decide whether a cost metric can
/// cover a component at all (e.g. "number of FPGA LUTs" cannot be
/// measured for a CPU, §3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DeviceClass {
    /// General-purpose CPU (host cores).
    Cpu,
    /// Conventional (dumb) NIC.
    Nic,
    /// SmartNIC with on-board processing cores.
    SmartNic,
    /// FPGA (standalone or on a NIC).
    Fpga,
    /// Programmable switch (e.g. a match-action pipeline).
    ProgrammableSwitch,
    /// GPU accelerator.
    Gpu,
    /// Memory devices (DRAM/HBM) when accounted separately.
    Memory,
}

impl DeviceClass {
    /// All device classes, for exhaustive coverage checks.
    pub const ALL: [DeviceClass; 7] = [
        DeviceClass::Cpu,
        DeviceClass::Nic,
        DeviceClass::SmartNic,
        DeviceClass::Fpga,
        DeviceClass::ProgrammableSwitch,
        DeviceClass::Gpu,
        DeviceClass::Memory,
    ];
}

impl fmt::Display for DeviceClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DeviceClass::Cpu => "CPU",
            DeviceClass::Nic => "NIC",
            DeviceClass::SmartNic => "SmartNIC",
            DeviceClass::Fpga => "FPGA",
            DeviceClass::ProgrammableSwitch => "programmable switch",
            DeviceClass::Gpu => "GPU",
            DeviceClass::Memory => "memory",
        };
        f.write_str(s)
    }
}

/// Which device classes a cost metric can be measured on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoverageScope {
    /// Measurable on every device class (power, price, rack space, …).
    Universal,
    /// Measurable only on the listed device classes ("number of cores" on
    /// CPUs and SmartNIC cores; "LUTs" on FPGAs).
    Only(Vec<DeviceClass>),
}

impl CoverageScope {
    /// Whether the metric can be measured on `class`.
    pub fn covers(&self, class: DeviceClass) -> bool {
        match self {
            CoverageScope::Universal => true,
            CoverageScope::Only(classes) => classes.contains(&class),
        }
    }
}

/// A cost metric descriptor carrying the paper's three §3 properties.
///
/// Costs always improve downward; there is no direction field because a
/// "higher is better" cost is a contradiction in terms.
#[derive(Debug, Clone, PartialEq)]
pub struct CostMetric {
    name: &'static str,
    unit: Unit,
    /// Principle 1: identical deployments yield identical costs.
    context_independent: bool,
    /// Principle 2: measurable and comparable head-to-head today.
    quantifiable: bool,
    /// Which devices the metric can be measured on (input to Principle 3).
    scope: CoverageScope,
    /// Free-text caveat rendered in reports (e.g. rack space's cooling/
    /// power caveat from §3.4).
    caveat: Option<&'static str>,
}

impl CostMetric {
    /// Defines a custom cost metric.
    pub fn new(
        name: &'static str,
        unit: Unit,
        context_independent: bool,
        quantifiable: bool,
        scope: CoverageScope,
    ) -> Self {
        CostMetric { name, unit, context_independent, quantifiable, scope, caveat: None }
    }

    /// Attaches a caveat string rendered alongside the metric in reports.
    pub fn with_caveat(mut self, caveat: &'static str) -> Self {
        self.caveat = Some(caveat);
        self
    }

    // --- The §3.4 / Table 1 well-known metrics -------------------------

    /// Power draw in watts — the paper's recommended default: context-
    /// independent, quantifiable, and composable end-to-end.
    pub fn power_draw() -> Self {
        CostMetric::new("power draw", Unit::Watts, true, true, CoverageScope::Universal)
    }

    /// Heat dissipation in BTU/h (Table 1, context-independent).
    pub fn heat_dissipation() -> Self {
        CostMetric::new("heat dissipation", Unit::BtuPerHour, true, true, CoverageScope::Universal)
    }

    /// Silicon die area in mm² (Table 1, context-independent).
    pub fn die_area() -> Self {
        CostMetric::new(
            "silicon die area",
            Unit::SquareMillimeters,
            true,
            true,
            CoverageScope::Universal,
        )
    }

    /// Number of CPU cores (context-independent and quantifiable, but not
    /// end-to-end across device classes — §3.4).
    pub fn cpu_cores() -> Self {
        CostMetric::new(
            "number of CPU cores",
            Unit::Cores,
            true,
            true,
            CoverageScope::Only(vec![DeviceClass::Cpu]),
        )
    }

    /// Number of FPGA LUTs (same caveat as cores — §3.3/§3.4).
    pub fn fpga_luts() -> Self {
        CostMetric::new(
            "number of FPGA LUTs",
            Unit::Luts,
            true,
            true,
            CoverageScope::Only(vec![DeviceClass::Fpga]),
        )
    }

    /// Memory usage in bytes (Table 1, context-independent).
    pub fn memory_usage() -> Self {
        CostMetric::new("memory usage", Unit::Bytes, true, true, CoverageScope::Universal)
    }

    /// Rack space. Quantifiable and end-to-end, but only context-
    /// independent with qualifying information about power/cooling
    /// density (§3.4) — we keep the flag true and attach the caveat.
    pub fn rack_space() -> Self {
        CostMetric::new("rack space", Unit::RackUnits, true, true, CoverageScope::Universal)
            .with_caveat(
                "standard rack units assume comparable power and cooling density; \
                 report both alongside the number (\u{a7}3.4)",
            )
    }

    /// Total cost of ownership — context-dependent (§3.1): prices, energy
    /// and land costs vary by purchaser, location, and time.
    pub fn tco() -> Self {
        CostMetric::new(
            "total cost of ownership",
            Unit::Dollars,
            false,
            true,
            CoverageScope::Universal,
        )
        .with_caveat("release the pricing model used to compute it (\u{a7}3.1)")
    }

    /// Hardware purchase price — context-dependent (bulk discounts, time).
    pub fn hardware_price() -> Self {
        CostMetric::new("hardware price", Unit::Dollars, false, true, CoverageScope::Universal)
    }

    /// Carbon footprint — context-dependent and, per §3.2, lacking an
    /// agreed measurement methodology (not yet quantifiable).
    pub fn carbon_footprint() -> Self {
        CostMetric::new("carbon footprint", Unit::KgCo2e, false, false, CoverageScope::Universal)
    }

    // --- Accessors ------------------------------------------------------

    /// The metric's human-readable name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The unit of measurement.
    pub fn unit(&self) -> Unit {
        self.unit
    }

    /// Principle 1 flag.
    pub fn is_context_independent(&self) -> bool {
        self.context_independent
    }

    /// Principle 2 flag.
    pub fn is_quantifiable(&self) -> bool {
        self.quantifiable
    }

    /// Device-class coverage scope.
    pub fn scope(&self) -> &CoverageScope {
        &self.scope
    }

    /// Optional caveat for reports.
    pub fn caveat(&self) -> Option<&'static str> {
        self.caveat
    }

    /// Costs always improve downward.
    pub fn direction(&self) -> Direction {
        Direction::LowerIsBetter
    }

    /// Wraps a raw measurement, checking the unit.
    pub fn value(&self, q: Quantity) -> CostValue {
        assert_eq!(
            q.unit(),
            self.unit,
            "measurement unit {} does not match cost metric '{}' ({})",
            q.unit(),
            self.name,
            self.unit
        );
        CostValue { metric: self.clone(), quantity: q }
    }

    /// Sums per-component measurements into an end-to-end total.
    ///
    /// Returns `None` when the metric's unit does not compose across
    /// heterogeneous devices (cores, LUTs) and more than one component is
    /// present — the mechanical form of the §3.4 observation that "one
    /// cannot trivially add up cores or LUTs on different devices".
    pub fn compose(&self, parts: &[Quantity]) -> Option<CostValue> {
        if parts.is_empty() {
            return None;
        }
        if parts.len() > 1 && !self.unit.composes_across_devices() {
            return None;
        }
        let mut total = parts[0];
        for p in &parts[1..] {
            total = total.checked_add(*p).ok()?;
        }
        Some(self.value(total))
    }
}

impl fmt::Display for CostMetric {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}]", self.name, self.unit)
    }
}

/// A measured cost tagged with its metric.
#[derive(Debug, Clone, PartialEq)]
pub struct CostValue {
    metric: CostMetric,
    quantity: Quantity,
}

impl CostValue {
    /// The metric this value measures.
    pub fn metric(&self) -> &CostMetric {
        &self.metric
    }

    /// The measured quantity.
    pub fn quantity(&self) -> Quantity {
        self.quantity
    }

    /// True when `self` is a strictly lower (better) cost than `other`.
    pub fn is_better_than(&self, other: &CostValue) -> bool {
        self.assert_same_metric(other);
        self.quantity.value() < other.quantity.value()
    }

    /// True when `self` costs no more than `other`.
    pub fn is_at_least_as_good_as(&self, other: &CostValue) -> bool {
        self.assert_same_metric(other);
        self.quantity.value() <= other.quantity.value()
    }

    /// True when the two costs are equal within `rel_tol`.
    // lint: allow(N2, reason = "rel_tol is a dimensionless tolerance, not a measurement")
    pub fn approx_eq(&self, other: &CostValue, rel_tol: f64) -> bool {
        self.metric == other.metric && self.quantity.approx_eq(other.quantity, rel_tol)
    }

    fn assert_same_metric(&self, other: &CostValue) {
        assert_eq!(
            self.metric, other.metric,
            "cannot compare values of different cost metrics: '{}' vs '{}'",
            self.metric.name, other.metric.name
        );
    }
}

impl fmt::Display for CostValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}={}", self.metric.name, self.quantity)
    }
}

/// A violation of one of the paper's §3 principles, produced by
/// [`validate_cost_metric`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PrincipleViolation {
    /// Principle 1: the metric's value depends on deployment context.
    ContextDependent {
        /// Metric name.
        metric: &'static str,
    },
    /// Principle 2: no agreed way to measure or compare the metric.
    NotQuantifiable {
        /// Metric name.
        metric: &'static str,
    },
    /// Principle 3: the metric cannot be measured on a component of one
    /// of the systems being compared.
    IncompleteCoverage {
        /// Metric name.
        metric: &'static str,
        /// Name of the system with an uncovered component.
        system: String,
        /// The uncovered device class.
        device: DeviceClass,
    },
    /// Principle 3 (composition form): the metric covers each component,
    /// but its per-device readings cannot be added into one end-to-end
    /// number across different device classes (cores + NIC cores, LUTs +
    /// cores, …).
    NotComposable {
        /// Metric name.
        metric: &'static str,
        /// Name of the system whose components cannot be summed.
        system: String,
    },
}

impl fmt::Display for PrincipleViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PrincipleViolation::ContextDependent { metric } => write!(
                f,
                "principle 1 violation: '{metric}' is context-dependent; identical deployments \
                 can yield different values"
            ),
            PrincipleViolation::NotQuantifiable { metric } => {
                write!(f, "principle 2 violation: '{metric}' has no agreed measurement methodology")
            }
            PrincipleViolation::IncompleteCoverage { metric, system, device } => write!(
                f,
                "principle 3 violation: '{metric}' cannot be measured on the {device} used by \
                 system '{system}'"
            ),
            PrincipleViolation::NotComposable { metric, system } => write!(
                f,
                "principle 3 violation: '{metric}' readings on the heterogeneous devices of \
                 system '{system}' cannot be summed into one end-to-end cost"
            ),
        }
    }
}

/// Checks a cost metric against the paper's three principles for a
/// concrete comparison, where each system is described by its name and
/// the device classes it uses. Returns every violation found (empty means
/// the metric is a fair choice for this comparison).
///
/// # Examples
///
/// §3.3's example: FPGA LUTs cannot cover a CPU-only system, but power
/// covers both.
///
/// ```
/// use apples_metrics::{validate_cost_metric, CostMetric};
/// use apples_metrics::cost::DeviceClass;
///
/// let systems: &[(&str, &[DeviceClass])] = &[
///     ("cpu-only", &[DeviceClass::Cpu]),
///     ("fpga+cpu", &[DeviceClass::Fpga, DeviceClass::Cpu]),
/// ];
/// assert!(!validate_cost_metric(&CostMetric::fpga_luts(), systems).is_empty());
/// assert!(validate_cost_metric(&CostMetric::power_draw(), systems).is_empty());
/// ```
pub fn validate_cost_metric(
    metric: &CostMetric,
    systems: &[(&str, &[DeviceClass])],
) -> Vec<PrincipleViolation> {
    let mut violations = Vec::new();
    if !metric.is_context_independent() {
        violations.push(PrincipleViolation::ContextDependent { metric: metric.name() });
    }
    if !metric.is_quantifiable() {
        violations.push(PrincipleViolation::NotQuantifiable { metric: metric.name() });
    }
    for (system, devices) in systems {
        for device in *devices {
            if !metric.scope().covers(*device) {
                violations.push(PrincipleViolation::IncompleteCoverage {
                    metric: metric.name(),
                    system: (*system).to_owned(),
                    device: *device,
                });
            }
        }
        // Distinct covered device classes whose readings cannot be summed.
        let mut covered: Vec<DeviceClass> =
            devices.iter().copied().filter(|d| metric.scope().covers(*d)).collect();
        covered.sort();
        covered.dedup();
        if covered.len() > 1 && !metric.unit().composes_across_devices() {
            violations.push(PrincipleViolation::NotComposable {
                metric: metric.name(),
                system: (*system).to_owned(),
            });
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quantity::{cores, watts};

    const CPU_ONLY: &[DeviceClass] = &[DeviceClass::Cpu, DeviceClass::Nic];
    const FPGA_SYSTEM: &[DeviceClass] = &[DeviceClass::Cpu, DeviceClass::Fpga];

    #[test]
    fn power_passes_all_principles() {
        let v = validate_cost_metric(
            &CostMetric::power_draw(),
            &[("baseline", CPU_ONLY), ("proposed", FPGA_SYSTEM)],
        );
        assert!(v.is_empty(), "unexpected violations: {v:?}");
    }

    #[test]
    fn luts_fail_coverage_for_cpu_only_system() {
        // §3.3's example: FPGA LUTs cannot cover a CPU-only system.
        let v = validate_cost_metric(
            &CostMetric::fpga_luts(),
            &[("baseline", CPU_ONLY), ("proposed", FPGA_SYSTEM)],
        );
        assert!(v.iter().any(|x| matches!(
            x,
            PrincipleViolation::IncompleteCoverage { device: DeviceClass::Cpu, .. }
        )));
    }

    #[test]
    fn cores_fail_end_to_end_for_fpga_system() {
        // §3.3's second example: core counts miss the FPGA's cost.
        let v = validate_cost_metric(&CostMetric::cpu_cores(), &[("proposed", FPGA_SYSTEM)]);
        assert!(v.iter().any(|x| matches!(
            x,
            PrincipleViolation::IncompleteCoverage { device: DeviceClass::Fpga, .. }
        )));
    }

    #[test]
    fn tco_flags_context_dependence() {
        let v = validate_cost_metric(&CostMetric::tco(), &[("any", CPU_ONLY)]);
        assert!(v.iter().any(|x| matches!(x, PrincipleViolation::ContextDependent { .. })));
    }

    #[test]
    fn carbon_flags_both_p1_and_p2() {
        let v = validate_cost_metric(&CostMetric::carbon_footprint(), &[("any", CPU_ONLY)]);
        assert!(v.iter().any(|x| matches!(x, PrincipleViolation::ContextDependent { .. })));
        assert!(v.iter().any(|x| matches!(x, PrincipleViolation::NotQuantifiable { .. })));
    }

    #[test]
    fn cores_not_composable_across_cpu_and_smartnic() {
        // A metric defined over both CPU and SmartNIC cores still can't
        // add them into one number.
        let m = CostMetric::new(
            "processing cores",
            Unit::Cores,
            true,
            true,
            CoverageScope::Only(vec![DeviceClass::Cpu, DeviceClass::SmartNic]),
        );
        let v =
            validate_cost_metric(&m, &[("offload", &[DeviceClass::Cpu, DeviceClass::SmartNic])]);
        assert!(v.iter().any(|x| matches!(x, PrincipleViolation::NotComposable { .. })));
    }

    #[test]
    fn compose_sums_universal_metrics() {
        let m = CostMetric::power_draw();
        let total = m.compose(&[watts(50.0), watts(20.0)]).unwrap();
        assert_eq!(total.quantity(), watts(70.0));
    }

    #[test]
    fn compose_rejects_multi_device_core_counts() {
        let m = CostMetric::cpu_cores();
        assert!(m.compose(&[cores(4.0), cores(2.0)]).is_none());
        // A single reading is fine.
        assert!(m.compose(&[cores(4.0)]).is_some());
        // Empty input composes to nothing.
        assert!(m.compose(&[]).is_none());
    }

    #[test]
    fn cost_comparisons_are_lower_is_better() {
        let m = CostMetric::power_draw();
        assert!(m.value(watts(50.0)).is_better_than(&m.value(watts(70.0))));
        assert!(m.value(watts(50.0)).is_at_least_as_good_as(&m.value(watts(50.0))));
    }

    #[test]
    #[should_panic(expected = "does not match cost metric")]
    fn wrong_unit_rejected() {
        let _ = CostMetric::power_draw().value(cores(4.0));
    }

    #[test]
    fn violation_messages_name_the_principles() {
        let v = PrincipleViolation::ContextDependent { metric: "TCO" };
        assert!(v.to_string().contains("principle 1"));
        let v = PrincipleViolation::NotQuantifiable { metric: "carbon" };
        assert!(v.to_string().contains("principle 2"));
    }
}
