//! Jain's fairness index (Jain, Chiu, Hawe 1984), cited by §4.3 as a
//! canonical non-scalable performance metric.
//!
//! For allocations `x_1..x_n`, `JFI = (Σx)² / (n · Σx²)`. It is 1 when
//! all allocations are equal and `k/n` when `k` of `n` users share the
//! resource equally while the rest get nothing.

/// Computes Jain's fairness index over a slice of non-negative
/// allocations. Returns `None` for an empty slice or when every
/// allocation is zero (the index is undefined there).
///
/// # Examples
///
/// ```
/// use apples_metrics::fairness::jains_index;
///
/// assert_eq!(jains_index(&[5.0, 5.0, 5.0, 5.0]), Some(1.0)); // perfectly fair
/// assert_eq!(jains_index(&[3.0, 3.0, 0.0, 0.0]), Some(0.5)); // 2 of 4 served
/// assert_eq!(jains_index(&[]), None);
/// ```
// lint: allow(N2, reason = "Jain's index is defined over raw same-unit allocations and returns a dimensionless ratio in (0, 1]")
pub fn jains_index(allocations: &[f64]) -> Option<f64> {
    if allocations.is_empty() {
        return None;
    }
    assert!(
        allocations.iter().all(|x| x.is_finite() && *x >= 0.0),
        "allocations must be finite and non-negative"
    );
    let sum: f64 = allocations.iter().sum();
    let sum_sq: f64 = allocations.iter().map(|x| x * x).sum();
    // lint: allow(N1, reason = "exact-zero sentinel: all-zero allocations make the index 0/0, mapped to fully-fair by convention")
    if sum_sq == 0.0 {
        return None;
    }
    Some(sum * sum / (allocations.len() as f64 * sum_sq))
}

#[cfg(test)]
mod tests {
    use super::*;
    use apples_rng::Rng;

    #[test]
    fn equal_allocations_give_one() {
        assert!((jains_index(&[5.0, 5.0, 5.0, 5.0]).unwrap() - 1.0).abs() < 1e-12);
        assert!((jains_index(&[0.1]).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn k_of_n_equal_share_gives_k_over_n() {
        // 2 of 4 flows get equal service, 2 get nothing: JFI = 0.5.
        assert!((jains_index(&[3.0, 3.0, 0.0, 0.0]).unwrap() - 0.5).abs() < 1e-12);
        // 1 of 5: JFI = 0.2.
        assert!((jains_index(&[7.0, 0.0, 0.0, 0.0, 0.0]).unwrap() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn undefined_cases() {
        assert_eq!(jains_index(&[]), None);
        assert_eq!(jains_index(&[0.0, 0.0]), None);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_allocations_rejected() {
        let _ = jains_index(&[1.0, -1.0]);
    }

    fn random_vec(rng: &mut Rng, max_len: usize, lo: f64, hi: f64) -> Vec<f64> {
        let len = rng.range_usize(1, max_len);
        (0..len).map(|_| rng.range_f64(lo, hi)).collect()
    }

    #[test]
    fn index_is_within_bounds() {
        let mut rng = Rng::seed_from_u64(0xFA1);
        for _ in 0..500 {
            let xs = random_vec(&mut rng, 64, 0.0, 1e6);
            if let Some(j) = jains_index(&xs) {
                let n = xs.len() as f64;
                assert!(j >= 1.0 / n - 1e-9, "JFI {j} below 1/n");
                assert!(j <= 1.0 + 1e-9, "JFI {j} above 1");
            }
        }
    }

    #[test]
    fn index_is_scale_invariant() {
        let mut rng = Rng::seed_from_u64(0xFA2);
        for _ in 0..500 {
            let xs = random_vec(&mut rng, 32, 0.001, 1e3);
            let k = rng.range_f64(0.001, 1e3);
            let a = jains_index(&xs);
            let scaled: Vec<f64> = xs.iter().map(|x| x * k).collect();
            let b = jains_index(&scaled);
            match (a, b) {
                (Some(a), Some(b)) => assert!((a - b).abs() < 1e-9),
                (None, None) => {}
                _ => panic!("scaling changed definedness"),
            }
        }
    }

    #[test]
    fn replication_does_not_change_index() {
        // The §4.3 point operationalized: duplicating the system
        // (same per-flow allocations on a replica) leaves JFI fixed,
        // so horizontal scaling cannot improve it.
        let mut rng = Rng::seed_from_u64(0xFA3);
        for _ in 0..500 {
            let xs = random_vec(&mut rng, 16, 0.001, 1e3);
            let single = jains_index(&xs).unwrap();
            let mut doubled = xs.clone();
            doubled.extend_from_slice(&xs);
            let replicated = jains_index(&doubled).unwrap();
            assert!((single - replicated).abs() < 1e-9);
        }
    }
}
