//! Unit-checked scalar quantities.
//!
//! A [`Quantity`] is a finite `f64` value paired with a [`Unit`]. Same-unit
//! quantities support arithmetic; cross-unit arithmetic is a programming
//! error surfaced through the checked APIs (or a panic via the operator
//! sugar, with an explanatory message).

use crate::unit::Unit;
use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, Div, Mul, Sub};

/// A scalar measurement: a finite value in a specific [`Unit`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Quantity {
    value: f64,
    unit: Unit,
}

/// Error returned by checked arithmetic on [`Quantity`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuantityError {
    /// Tried to combine quantities measured in different units.
    UnitMismatch {
        /// Unit of the left operand.
        left: Unit,
        /// Unit of the right operand.
        right: Unit,
    },
    /// The resulting value would not be finite (overflow, 0/0, …).
    NotFinite,
}

impl fmt::Display for QuantityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QuantityError::UnitMismatch { left, right } => {
                write!(f, "unit mismatch: {left} vs {right}")
            }
            QuantityError::NotFinite => write!(f, "result is not a finite number"),
        }
    }
}

impl std::error::Error for QuantityError {}

impl Quantity {
    /// Creates a quantity. Panics if `value` is not finite; measurements
    /// are always finite, so a NaN/inf here is a bug at the call site.
    pub fn new(value: f64, unit: Unit) -> Self {
        assert!(value.is_finite(), "quantity value must be finite, got {value}");
        Quantity { value, unit }
    }

    /// The raw scalar value.
    // lint: allow(N2, reason = "the single sanctioned exit from the unit system; callers opt out explicitly by name")
    pub fn value(self) -> f64 {
        self.value
    }

    /// The unit of measurement.
    pub fn unit(self) -> Unit {
        self.unit
    }

    /// Checked addition: both operands must share a unit.
    pub fn checked_add(self, rhs: Quantity) -> Result<Quantity, QuantityError> {
        self.combine(rhs, |a, b| a + b)
    }

    /// Checked subtraction: both operands must share a unit.
    pub fn checked_sub(self, rhs: Quantity) -> Result<Quantity, QuantityError> {
        self.combine(rhs, |a, b| a - b)
    }

    /// Scales the quantity by a dimensionless factor.
    pub fn scale(self, factor: f64) -> Quantity {
        Quantity::new(self.value * factor, self.unit)
    }

    /// Dimensionless ratio of two same-unit quantities (`self / rhs`).
    // lint: allow(N2, reason = "a ratio of same-unit quantities is dimensionless by construction; f64 is its honest type")
    pub fn ratio_to(self, rhs: Quantity) -> Result<f64, QuantityError> {
        if self.unit != rhs.unit {
            return Err(QuantityError::UnitMismatch { left: self.unit, right: rhs.unit });
        }
        let r = self.value / rhs.value;
        if r.is_finite() {
            Ok(r)
        } else {
            Err(QuantityError::NotFinite)
        }
    }

    /// True when the two quantities share a unit and their values differ
    /// by at most `rel_tol` of the larger magnitude (used by operating-
    /// regime detection, §4.1).
    // lint: allow(N2, reason = "rel_tol is a dimensionless tolerance, not a measurement; wrapping it in a unit would be noise")
    pub fn approx_eq(self, rhs: Quantity, rel_tol: f64) -> bool {
        if self.unit != rhs.unit {
            return false;
        }
        let scale = self.value.abs().max(rhs.value.abs());
        // lint: allow(N1, reason = "exact-zero sentinel: both values are identically zero, no rounding involved")
        if scale == 0.0 {
            return true;
        }
        (self.value - rhs.value).abs() <= rel_tol * scale
    }

    /// Total order between same-unit quantities. Returns `None` when the
    /// units differ.
    pub fn partial_cmp_checked(self, rhs: Quantity) -> Option<Ordering> {
        if self.unit != rhs.unit {
            return None;
        }
        // Values are finite by construction, so partial_cmp never fails.
        self.value.partial_cmp(&rhs.value)
    }

    fn combine(
        self,
        rhs: Quantity,
        op: impl Fn(f64, f64) -> f64,
    ) -> Result<Quantity, QuantityError> {
        if self.unit != rhs.unit {
            return Err(QuantityError::UnitMismatch { left: self.unit, right: rhs.unit });
        }
        let v = op(self.value, rhs.value);
        if v.is_finite() {
            Ok(Quantity { value: v, unit: self.unit })
        } else {
            Err(QuantityError::NotFinite)
        }
    }
}

impl Add for Quantity {
    type Output = Quantity;
    fn add(self, rhs: Quantity) -> Quantity {
        // lint: allow(P1, reason = "documented operator sugar: mixing units via + is a programming error; checked_add is the fallible API")
        self.checked_add(rhs).expect("quantity addition")
    }
}

impl Sub for Quantity {
    type Output = Quantity;
    fn sub(self, rhs: Quantity) -> Quantity {
        // lint: allow(P1, reason = "documented operator sugar: mixing units via - is a programming error; checked_sub is the fallible API")
        self.checked_sub(rhs).expect("quantity subtraction")
    }
}

impl Mul<f64> for Quantity {
    type Output = Quantity;
    fn mul(self, rhs: f64) -> Quantity {
        self.scale(rhs)
    }
}

impl Div<f64> for Quantity {
    type Output = Quantity;
    fn div(self, rhs: f64) -> Quantity {
        self.scale(1.0 / rhs)
    }
}

impl fmt::Display for Quantity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Pick an SI prefix for the value, keeping the unit symbol intact.
        let (scaled, prefix) = si_prefix(self.value);
        if self.unit == Unit::Ratio {
            write!(f, "{:.4}", self.value)
        } else if prefix.is_empty() {
            write!(f, "{:.3} {}", scaled, self.unit)
        } else {
            write!(f, "{:.3} {}{}", scaled, prefix, self.unit)
        }
    }
}

fn si_prefix(v: f64) -> (f64, &'static str) {
    let a = v.abs();
    if a >= 1e12 {
        (v / 1e12, "T")
    } else if a >= 1e9 {
        (v / 1e9, "G")
    } else if a >= 1e6 {
        (v / 1e6, "M")
    } else if a >= 1e3 {
        (v / 1e3, "k")
    // lint: allow(N1, reason = "exact-zero sentinel picking the empty SI prefix; zero is representable exactly")
    } else if a == 0.0 || a >= 1.0 {
        (v, "")
    } else if a >= 1e-3 {
        (v * 1e3, "m")
    } else if a >= 1e-6 {
        (v * 1e6, "u")
    } else {
        (v * 1e9, "n")
    }
}

// ---------------------------------------------------------------------------
// Convenience constructors for the units used throughout the workspace.
// ---------------------------------------------------------------------------

/// Bits per second.
pub fn bps(v: f64) -> Quantity {
    Quantity::new(v, Unit::BitsPerSecond)
}

/// Gigabits per second.
pub fn gbps(v: f64) -> Quantity {
    bps(v * 1e9)
}

/// Megabits per second.
pub fn mbps(v: f64) -> Quantity {
    bps(v * 1e6)
}

/// Packets per second.
pub fn pps(v: f64) -> Quantity {
    Quantity::new(v, Unit::PacketsPerSecond)
}

/// Millions of packets per second.
pub fn mpps(v: f64) -> Quantity {
    pps(v * 1e6)
}

/// Seconds.
pub fn seconds(v: f64) -> Quantity {
    Quantity::new(v, Unit::Seconds)
}

/// Microseconds.
pub fn micros(v: f64) -> Quantity {
    seconds(v * 1e-6)
}

/// Nanoseconds.
pub fn nanos(v: f64) -> Quantity {
    seconds(v * 1e-9)
}

/// Watts.
pub fn watts(v: f64) -> Quantity {
    Quantity::new(v, Unit::Watts)
}

/// Joules.
pub fn joules(v: f64) -> Quantity {
    Quantity::new(v, Unit::Joules)
}

/// CPU cores.
pub fn cores(v: f64) -> Quantity {
    Quantity::new(v, Unit::Cores)
}

/// FPGA lookup tables.
pub fn luts(v: f64) -> Quantity {
    Quantity::new(v, Unit::Luts)
}

/// Bytes of memory.
pub fn bytes(v: f64) -> Quantity {
    Quantity::new(v, Unit::Bytes)
}

/// Rack units.
pub fn rack_units(v: f64) -> Quantity {
    Quantity::new(v, Unit::RackUnits)
}

/// US dollars.
pub fn dollars(v: f64) -> Quantity {
    Quantity::new(v, Unit::Dollars)
}

/// Dimensionless ratio.
pub fn ratio(v: f64) -> Quantity {
    Quantity::new(v, Unit::Ratio)
}

/// Converts a power draw in watts to heat dissipation in BTU/h
/// (1 W = 3.412142 BTU/h): all electrical power consumed by a network
/// device ends up as heat.
pub fn watts_to_btu_per_hour(power: Quantity) -> Result<Quantity, QuantityError> {
    if power.unit() != Unit::Watts {
        return Err(QuantityError::UnitMismatch { left: power.unit(), right: Unit::Watts });
    }
    Ok(Quantity::new(power.value() * 3.412_142, Unit::BtuPerHour))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_same_unit() {
        let a = watts(50.0) + watts(20.0);
        assert_eq!(a, watts(70.0));
    }

    #[test]
    fn checked_add_rejects_unit_mismatch() {
        let err = watts(1.0).checked_add(gbps(1.0)).unwrap_err();
        assert!(matches!(err, QuantityError::UnitMismatch { .. }));
    }

    #[test]
    #[should_panic(expected = "quantity addition")]
    fn operator_add_panics_on_mismatch() {
        let _ = watts(1.0) + seconds(1.0);
    }

    #[test]
    fn scaling_preserves_unit() {
        let q = gbps(10.0) * 2.0;
        assert_eq!(q.unit(), Unit::BitsPerSecond);
        assert!((q.value() - 20e9).abs() < 1e-3);
    }

    #[test]
    fn ratio_of_like_quantities_is_dimensionless() {
        assert!((gbps(20.0).ratio_to(gbps(10.0)).unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn ratio_rejects_mismatch_and_zero_division() {
        assert!(gbps(1.0).ratio_to(watts(1.0)).is_err());
        assert!(gbps(0.0).ratio_to(gbps(0.0)).is_err());
    }

    #[test]
    fn approx_eq_uses_relative_tolerance() {
        assert!(gbps(100.0).approx_eq(gbps(100.4), 0.005));
        assert!(!gbps(100.0).approx_eq(gbps(102.0), 0.005));
        assert!(!gbps(100.0).approx_eq(pps(100.0), 0.5));
        assert!(bps(0.0).approx_eq(bps(0.0), 0.0));
    }

    #[test]
    fn comparison_requires_same_unit() {
        use std::cmp::Ordering;
        assert_eq!(watts(50.0).partial_cmp_checked(watts(70.0)), Some(Ordering::Less));
        assert_eq!(watts(50.0).partial_cmp_checked(gbps(70.0)), None);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn non_finite_values_rejected() {
        let _ = Quantity::new(f64::NAN, Unit::Watts);
    }

    #[test]
    fn heat_conversion() {
        let heat = watts_to_btu_per_hour(watts(100.0)).unwrap();
        assert_eq!(heat.unit(), Unit::BtuPerHour);
        assert!((heat.value() - 341.2142).abs() < 1e-3);
        assert!(watts_to_btu_per_hour(gbps(1.0)).is_err());
    }

    #[test]
    fn display_uses_si_prefixes() {
        assert_eq!(gbps(10.0).to_string(), "10.000 Gbit/s");
        assert_eq!(micros(5.0).to_string(), "5.000 us");
        assert_eq!(watts(50.0).to_string(), "50.000 W");
        assert_eq!(mpps(14.88).to_string(), "14.880 Mpkt/s");
    }

    #[test]
    fn display_small_and_zero() {
        assert_eq!(seconds(0.0).to_string(), "0.000 s");
        assert_eq!(nanos(3.0).to_string(), "3.000 ns");
    }
}
