//! The well-known cost-metric registry and the paper's Table 1.
//!
//! Table 1 of the paper classifies example cost metrics into
//! context-dependent and context-independent. [`table1`] reproduces that
//! classification from the metric descriptors themselves (rather than
//! hard-coding the table), so the rendered table is guaranteed to agree
//! with the flags the validation machinery uses.

use crate::cost::CostMetric;

/// Table 1's two metric classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MetricClass {
    /// Can be calculated differently depending on who evaluates and when.
    ContextDependent,
    /// Identical deployments always yield identical values.
    ContextIndependent,
}

impl std::fmt::Display for MetricClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MetricClass::ContextDependent => f.write_str("Context Dependent"),
            MetricClass::ContextIndependent => f.write_str("Context Independent"),
        }
    }
}

/// Classifies a metric per Table 1.
pub fn classify(metric: &CostMetric) -> MetricClass {
    if metric.is_context_independent() {
        MetricClass::ContextIndependent
    } else {
        MetricClass::ContextDependent
    }
}

/// Every well-known cost metric this crate defines, in Table 1 order
/// (context-dependent examples first, then context-independent).
pub fn well_known_metrics() -> Vec<CostMetric> {
    vec![
        // Context dependent (Table 1, first row).
        CostMetric::tco(),
        CostMetric::hardware_price(),
        CostMetric::carbon_footprint(),
        // Context independent (Table 1, second row).
        CostMetric::power_draw(),
        CostMetric::heat_dissipation(),
        CostMetric::die_area(),
        CostMetric::cpu_cores(),
        CostMetric::fpga_luts(),
        CostMetric::memory_usage(),
        // §3.4 discusses rack space as context-independent only with
        // qualification; it carries that caveat.
        CostMetric::rack_space(),
    ]
}

/// One row of the rendered Table 1.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1Row {
    /// The metric class (table's "Type" column).
    pub class: MetricClass,
    /// Example metrics with their unit symbols, e.g. `"TCO ($)"`.
    pub examples: Vec<String>,
}

/// Reproduces the paper's Table 1 from the metric descriptors.
pub fn table1() -> Vec<Table1Row> {
    let mut dependent = Vec::new();
    let mut independent = Vec::new();
    for m in well_known_metrics() {
        let entry = format!("{} ({})", m.name(), m.unit());
        match classify(&m) {
            MetricClass::ContextDependent => dependent.push(entry),
            MetricClass::ContextIndependent => independent.push(entry),
        }
    }
    vec![
        Table1Row { class: MetricClass::ContextDependent, examples: dependent },
        Table1Row { class: MetricClass::ContextIndependent, examples: independent },
    ]
}

/// Renders Table 1 as aligned plain text.
pub fn render_table1() -> String {
    let rows = table1();
    let mut out = String::new();
    out.push_str("Table 1: context-dependent vs context-independent cost metrics\n");
    for row in rows {
        out.push_str(&format!("  {:<20} | {}\n", row.class.to_string(), row.examples.join(", ")));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_two_rows_matching_the_paper() {
        let rows = table1();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].class, MetricClass::ContextDependent);
        assert_eq!(rows[1].class, MetricClass::ContextIndependent);
    }

    #[test]
    fn dependent_row_contains_tco_price_and_carbon() {
        let rows = table1();
        let dep = &rows[0].examples;
        assert!(dep.iter().any(|e| e.contains("total cost of ownership")));
        assert!(dep.iter().any(|e| e.contains("hardware price")));
        assert!(dep.iter().any(|e| e.contains("carbon footprint")));
        assert_eq!(dep.len(), 3);
    }

    #[test]
    fn independent_row_matches_papers_examples() {
        let rows = table1();
        let ind = &rows[1].examples;
        for needle in [
            "power draw",
            "heat dissipation",
            "silicon die area",
            "number of CPU cores",
            "number of FPGA LUTs",
            "memory usage",
        ] {
            assert!(ind.iter().any(|e| e.contains(needle)), "missing {needle}");
        }
    }

    #[test]
    fn classification_agrees_with_flags() {
        for m in well_known_metrics() {
            let c = classify(&m);
            assert_eq!(c == MetricClass::ContextIndependent, m.is_context_independent());
        }
    }

    #[test]
    fn render_is_nonempty_and_mentions_both_classes() {
        let s = render_table1();
        assert!(s.contains("Context Dependent"));
        assert!(s.contains("Context Independent"));
        assert!(s.contains("W"));
    }
}
