//! Improvement direction and scalability of metrics.

use std::cmp::Ordering;

/// Which way a metric improves.
///
/// Throughput improves upward; latency and every cost metric improve
/// downward. Making the direction explicit lets the comparison engine
/// normalize "better" without baking in assumptions per metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Larger values are better (throughput, fairness index).
    HigherIsBetter,
    /// Smaller values are better (latency, loss, all costs).
    LowerIsBetter,
}

impl Direction {
    /// Compares two raw values under this direction: `Ordering::Greater`
    /// means `a` is *better* than `b`. Uses `total_cmp`, so there is no
    /// panic path; metric values are finite by `Quantity` construction.
    // lint: allow(N2, reason = "compares already-validated same-unit raw values on behalf of Quantity")
    pub fn compare(self, a: f64, b: f64) -> Ordering {
        let natural = a.total_cmp(&b);
        match self {
            Direction::HigherIsBetter => natural,
            Direction::LowerIsBetter => natural.reverse(),
        }
    }

    /// True when `a` is strictly better than `b` under this direction.
    // lint: allow(N2, reason = "compares already-validated same-unit raw values on behalf of Quantity")
    pub fn is_better(self, a: f64, b: f64) -> bool {
        self.compare(a, b) == Ordering::Greater
    }

    /// True when `a` is at least as good as `b` under this direction.
    // lint: allow(N2, reason = "compares already-validated same-unit raw values on behalf of Quantity")
    pub fn is_at_least_as_good(self, a: f64, b: f64) -> bool {
        self.compare(a, b) != Ordering::Less
    }
}

/// Whether a metric scales when the system is horizontally scaled.
///
/// §4.2 relies on scaling the baseline to the proposed system's
/// comparison region; §4.3 observes that some metrics (latency, Jain's
/// fairness index) do not improve by replicating the system, so scaled
/// comparisons are invalid for them (Principle 7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scalability {
    /// Replicating the system multiplies the metric (throughput: two
    /// replicas serve twice the load, at best).
    Scalable,
    /// Replication does not (beyond second-order load effects) improve
    /// the metric; the §4.3 non-scalable comparison rules apply.
    NonScalable,
}

impl Scalability {
    /// True for [`Scalability::Scalable`].
    pub fn is_scalable(self) -> bool {
        matches!(self, Scalability::Scalable)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn higher_is_better_orders_naturally() {
        assert!(Direction::HigherIsBetter.is_better(15.0, 10.0));
        assert!(!Direction::HigherIsBetter.is_better(10.0, 15.0));
        assert!(Direction::HigherIsBetter.is_at_least_as_good(10.0, 10.0));
    }

    #[test]
    fn lower_is_better_reverses() {
        assert!(Direction::LowerIsBetter.is_better(5.0, 10.0));
        assert!(!Direction::LowerIsBetter.is_better(10.0, 5.0));
        assert!(Direction::LowerIsBetter.is_at_least_as_good(5.0, 5.0));
    }

    #[test]
    fn equal_values_are_not_strictly_better() {
        assert!(!Direction::HigherIsBetter.is_better(7.0, 7.0));
        assert!(!Direction::LowerIsBetter.is_better(7.0, 7.0));
    }

    #[test]
    fn scalability_flag() {
        assert!(Scalability::Scalable.is_scalable());
        assert!(!Scalability::NonScalable.is_scalable());
    }
}
