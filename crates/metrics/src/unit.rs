//! Measurement units for performance and cost quantities.
//!
//! The unit set is deliberately small: exactly the units that appear in
//! the paper's examples and Table 1, plus the dimensionless ratio used by
//! fairness indices and utilizations.

use std::fmt;

/// A measurement unit attached to a [`crate::Quantity`].
///
/// Units are compared nominally (no automatic conversion between, say,
/// watts and BTU/h — conversions are explicit functions such as
/// [`crate::quantity::watts_to_btu_per_hour`]) so that accidental
/// cross-unit arithmetic is caught instead of silently miscomputed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Unit {
    /// Bits per second (throughput / data rate).
    BitsPerSecond,
    /// Packets per second (throughput for minimum-sized-packet tests).
    PacketsPerSecond,
    /// Seconds (latency, durations).
    Seconds,
    /// Watts (power draw — the paper's recommended default cost metric).
    Watts,
    /// Joules (energy = integrated power).
    Joules,
    /// BTU per hour (heat dissipation; Table 1 context-independent).
    BtuPerHour,
    /// Square millimeters of silicon die area (Table 1 context-independent).
    SquareMillimeters,
    /// FPGA lookup tables (Table 1 context-independent).
    Luts,
    /// CPU cores (Table 1 context-independent).
    Cores,
    /// Bytes of memory usage (Table 1 context-independent).
    Bytes,
    /// Rack units of space (§3.4: quantifiable, end-to-end, but only
    /// context-independent with extra qualifying information).
    RackUnits,
    /// United States dollars (TCO, hardware price — context dependent).
    Dollars,
    /// Kilograms of CO₂-equivalent (carbon footprint — context dependent
    /// and not yet quantifiable by an agreed methodology, §3.2).
    KgCo2e,
    /// Dimensionless ratio in `[0, 1]` or similar (utilization, loss
    /// fraction, Jain's fairness index).
    Ratio,
}

impl Unit {
    /// Canonical short symbol used when rendering values.
    pub fn symbol(self) -> &'static str {
        match self {
            Unit::BitsPerSecond => "bit/s",
            Unit::PacketsPerSecond => "pkt/s",
            Unit::Seconds => "s",
            Unit::Watts => "W",
            Unit::Joules => "J",
            Unit::BtuPerHour => "BTU/h",
            Unit::SquareMillimeters => "mm^2",
            Unit::Luts => "LUTs",
            Unit::Cores => "cores",
            Unit::Bytes => "B",
            Unit::RackUnits => "RU",
            Unit::Dollars => "$",
            Unit::KgCo2e => "kgCO2e",
            Unit::Ratio => "",
        }
    }

    /// Whether quantities in this unit can be meaningfully added across
    /// devices of *different* kinds to obtain a system-wide total.
    ///
    /// This is the mechanical half of the paper's Principle 3 (end-to-end
    /// coverage): watts add across a CPU and an FPGA, but "number of
    /// cores" on a CPU and on a SmartNIC cannot be combined into one
    /// meaningful number (§3.4), and neither can LUTs with cores.
    pub fn composes_across_devices(self) -> bool {
        match self {
            Unit::Watts
            | Unit::Joules
            | Unit::BtuPerHour
            | Unit::SquareMillimeters
            | Unit::Bytes
            | Unit::RackUnits
            | Unit::Dollars
            | Unit::KgCo2e => true,
            // Core counts and LUT counts only compose across devices of
            // the same class; throughput-like and ratio units are not
            // costs at all.
            Unit::Cores
            | Unit::Luts
            | Unit::BitsPerSecond
            | Unit::PacketsPerSecond
            | Unit::Seconds
            | Unit::Ratio => false,
        }
    }
}

impl fmt::Display for Unit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symbols_are_unique() {
        let all = [
            Unit::BitsPerSecond,
            Unit::PacketsPerSecond,
            Unit::Seconds,
            Unit::Watts,
            Unit::Joules,
            Unit::BtuPerHour,
            Unit::SquareMillimeters,
            Unit::Luts,
            Unit::Cores,
            Unit::Bytes,
            Unit::RackUnits,
            Unit::Dollars,
            Unit::KgCo2e,
        ];
        let mut seen = std::collections::BTreeSet::new();
        for u in all {
            assert!(seen.insert(u.symbol()), "duplicate symbol {}", u.symbol());
        }
    }

    #[test]
    fn additive_units_compose() {
        assert!(Unit::Watts.composes_across_devices());
        assert!(Unit::RackUnits.composes_across_devices());
        assert!(Unit::SquareMillimeters.composes_across_devices());
    }

    #[test]
    fn per_device_counters_do_not_compose() {
        assert!(!Unit::Cores.composes_across_devices());
        assert!(!Unit::Luts.composes_across_devices());
    }

    #[test]
    fn display_matches_symbol() {
        assert_eq!(Unit::Watts.to_string(), "W");
        assert_eq!(Unit::BitsPerSecond.to_string(), "bit/s");
    }
}
