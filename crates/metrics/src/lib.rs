//! # apples-metrics
//!
//! Typed quantities plus performance and cost metrics for fair comparisons
//! of heterogeneous systems, after *"Of Apples and Oranges: Fair
//! Comparisons in Heterogenous Systems Evaluation"* (HotNets 2023).
//!
//! The paper's §3 argues that cost metrics used in research evaluations
//! should have three properties:
//!
//! 1. **Context-independence** (Principle 1): identical deployments must
//!    yield identical costs, regardless of who measures them and when.
//! 2. **Quantifiability** (Principle 2): the metric must be measurable and
//!    comparable head-to-head.
//! 3. **End-to-end coverage** (Principle 3): the metric must cover every
//!    component of every system in the comparison.
//!
//! This crate encodes those properties in the type system and provides:
//!
//! - [`Quantity`]/[`Unit`]: unit-checked scalar quantities (Gbps, watts,
//!   microseconds, LUTs, …) so that perf/cost values cannot be mixed up.
//! - [`PerfMetric`]: performance metric descriptors carrying an explicit
//!   improvement [`Direction`] and [`Scalability`] (latency and Jain's
//!   fairness index are *not* scalable — §4.3).
//! - [`CostMetric`]: cost metric descriptors carrying the three paper
//!   properties, plus [`validate_cost_metric`] which reports
//!   [`PrincipleViolation`]s for a given set of systems.
//! - [`catalog`]: the well-known metric registry reproducing the paper's
//!   Table 1 taxonomy.
//! - [`pricing::PricingModel`]: the paper's §3.1 suggestion of releasing a
//!   pricing model alongside a paper so others can recompute TCO — a
//!   context-independent stand-in for an inherently context-dependent
//!   metric.
//!
//! All items are plain data + pure functions; no global state.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod catalog;
pub mod cost;
pub mod direction;
pub mod fairness;
pub mod perf;
pub mod pricing;
pub mod quantity;
pub mod unit;

pub use cost::{
    validate_cost_metric, CostMetric, CostValue, CoverageScope, DeviceClass, PrincipleViolation,
};
pub use direction::{Direction, Scalability};
pub use perf::{PerfMetric, PerfValue};
pub use quantity::Quantity;
pub use unit::Unit;
