//! Dev probe decomposing forward-2stage per-packet cost into stub
//! generation, packet minting, raw wheel traffic, and the full engine
//! run. Not wired into CI; run with
//! `cargo run --release -p apples-bench --example hotpath_probe`.

use apples_bench::wallclock::WallClock;
use apples_simnet::engine::StageConfig;
use apples_simnet::nf::NfChain;
use apples_simnet::sched::{EventScheduler, SchedulerKind};
use apples_simnet::service::{LineRate, NfService};
use apples_simnet::{Engine, Packet};
use apples_workload::WorkloadSpec;

fn forward_pipeline() -> Engine {
    Engine::new(vec![
        StageConfig::new("front", 2, 128, Box::new(NfService::host_core(NfChain::empty()))),
        StageConfig::new("back", 1, 128, Box::new(LineRate::new("10G", 10e9))),
    ])
}

fn main() {
    let wl = WorkloadSpec::cbr(8e6, 200, 16, 7);
    let sim_ns = 50_000_000u64;

    // 1. Stub generation alone.
    let t0 = WallClock::start();
    let mut n = 0u64;
    let mut acc = 0u64;
    for s in wl.stream().take_while(|s| s.t_ns < sim_ns) {
        n += 1;
        acc = acc.wrapping_add(u64::from(s.size_bytes) + s.t_ns);
    }
    let gen_ms = t0.elapsed_ms();
    println!(
        "stub-gen: {n} stubs in {gen_ms:.1} ms = {:.0} ns/stub (acc {acc})",
        gen_ms * 1e6 / n as f64
    );

    // 2. Stub gen + Packet::new + a sink-shaped accumulation.
    let t0 = WallClock::start();
    let mut bits = 0u64;
    for (i, s) in wl.stream().take_while(|s| s.t_ns < sim_ns).enumerate() {
        let p = Packet::new(i as u64, s.flow, s.tuple, s.size_bytes, s.t_ns);
        bits = bits.wrapping_add(p.wire_bits());
    }
    let pkt_ms = t0.elapsed_ms();
    println!("stub+packet: {pkt_ms:.1} ms = {:.0} ns/pkt (bits {bits})", pkt_ms * 1e6 / n as f64);

    // 3. Raw wheel at engine-like occupancy: 2 pushes + drains per
    //    packet at ~125 ns spacing.
    let t0 = WallClock::start();
    let mut s = EventScheduler::new(SchedulerKind::Wheel);
    let mut seq = 0u64;
    let mut now = 0u64;
    let mut bucket = Vec::new();
    let mut pops = 0u64;
    for i in 0..n {
        let t = i * 125;
        s.push(t + 100, seq, 0);
        seq += 1;
        s.push(t + 180, seq, 0);
        seq += 1;
        while s.peek_time().is_some_and(|pt| pt <= t) {
            s.drain_bucket(&mut bucket);
            pops += bucket.len() as u64;
            now = now.max(t);
        }
    }
    while !s.is_empty() {
        s.drain_bucket(&mut bucket);
        pops += bucket.len() as u64;
    }
    let wheel_ms = t0.elapsed_ms();
    println!(
        "wheel 2ev/pkt: {wheel_ms:.1} ms = {:.0} ns/pkt ({pops} pops, cursor {now})",
        wheel_ms * 1e6 / n as f64
    );

    // 4. Full engine run (fused, wheel).
    let mut engine = forward_pipeline();
    let t0 = WallClock::start();
    let r = engine.run(&wl, sim_ns, 0);
    let run_ms = t0.elapsed_ms();
    println!(
        "engine run: {run_ms:.1} ms = {:.0} ns/pkt, {:.0} ns/event ({} events)",
        run_ms * 1e6 / n as f64,
        run_ms * 1e6 / r.total_events as f64,
        r.total_events
    );
}
