//! A bounded work-stealing thread pool on `std::thread::scope`.
//!
//! The harness runs dozens of independent, CPU-bound, deterministic
//! simulations (experiments, sweep points, trial ladders). This pool
//! saturates the machine without any external crates:
//!
//! - jobs are indexed up front and a shared **injector** hands each
//!   worker a contiguous chunk at a time (cheap under low contention);
//! - each worker owns a **deque**: it pops locally from the front and,
//!   when both its deque and the injector are empty, **steals** one job
//!   from the back of a sibling's deque, so stragglers' queues drain
//!   instead of idling the rest of the machine;
//! - worker count is capped at [`std::thread::available_parallelism`]
//!   (and at the job count), so nested pools degrade to serial execution
//!   rather than oversubscribing;
//! - results land in their job's slot, so the output order — and
//!   therefore every downstream artifact — is **identical to a serial
//!   run** regardless of scheduling.
//!
//! The caller's thread participates as worker 0: `run` never blocks a
//! core on pure coordination.

use std::collections::VecDeque;
use std::num::NonZeroUsize;
use std::sync::Mutex;

/// A bounded pool; see the module docs.
#[derive(Debug, Clone, Copy)]
pub struct Pool {
    workers: usize,
}

impl Default for Pool {
    fn default() -> Self {
        Pool::new()
    }
}

impl Pool {
    /// A pool capped at the machine's available parallelism.
    pub fn new() -> Self {
        let n = std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1);
        Pool::with_workers(n)
    }

    /// A pool with an explicit worker cap (≥ 1). Used by the harness's
    /// determinism tests to force serial and parallel schedules.
    pub fn with_workers(workers: usize) -> Self {
        assert!(workers > 0, "a pool needs at least one worker");
        Pool { workers }
    }

    /// The worker cap.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs every job, returning results in job order.
    ///
    /// Jobs must be independent; they may freely use nested pools (the
    /// cap is per-pool, and a fully-loaded machine just runs the inner
    /// jobs on the caller's thread).
    pub fn run<T, F>(&self, jobs: Vec<F>) -> Vec<T>
    where
        T: Send,
        F: FnOnce() -> T + Send,
    {
        let n = jobs.len();
        if n == 0 {
            return Vec::new();
        }
        let workers = self.workers.min(n);
        if workers == 1 {
            return jobs.into_iter().map(|job| job()).collect();
        }

        let slots: Vec<Mutex<Option<F>>> = jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
        let results: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let injector = Mutex::new((0..n).collect::<VecDeque<usize>>());
        let deques: Vec<Mutex<VecDeque<usize>>> =
            (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
        // Refill granularity: large enough to amortize the injector
        // lock, small enough to leave stealable work behind.
        let chunk = (n / (workers * 4)).max(1);

        let worker_loop = |me: usize| loop {
            // 1. Local work, front first (cache-warm order).
            let idx = deques[me].lock().expect("deque poisoned").pop_front();
            let idx = match idx {
                Some(i) => Some(i),
                None => {
                    // 2. Refill a chunk from the shared injector.
                    let mut inj = injector.lock().expect("injector poisoned");
                    let grabbed: Vec<usize> = (0..chunk).map_while(|_| inj.pop_front()).collect();
                    drop(inj);
                    let mut first = None;
                    if !grabbed.is_empty() {
                        let mut dq = deques[me].lock().expect("deque poisoned");
                        let mut it = grabbed.into_iter();
                        first = it.next();
                        dq.extend(it);
                    }
                    match first {
                        Some(i) => Some(i),
                        // 3. Steal one job from the back of a sibling.
                        None => (0..workers)
                            .filter(|&w| w != me)
                            .find_map(|w| deques[w].lock().expect("deque poisoned").pop_back()),
                    }
                }
            };
            let Some(idx) = idx else {
                break; // nothing local, injector dry, nothing to steal
            };
            let job = slots[idx].lock().expect("job slot poisoned").take().expect("job ran twice");
            let out = job();
            *results[idx].lock().expect("result slot poisoned") = Some(out);
        };

        std::thread::scope(|scope| {
            for w in 1..workers {
                scope.spawn(move || worker_loop(w));
            }
            worker_loop(0); // the caller works too
        });

        results
            .into_iter()
            .map(|m| {
                m.into_inner()
                    .expect("result slot poisoned")
                    .expect("worker exited with jobs unfinished")
            })
            .collect()
    }

    /// Maps `f` over `items` in parallel, preserving order.
    pub fn map<I, T, F>(&self, items: Vec<I>, f: F) -> Vec<T>
    where
        I: Send,
        T: Send,
        F: Fn(I) -> T + Sync,
    {
        let f = &f;
        self.run(items.into_iter().map(|item| move || f(item)).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_come_back_in_job_order() {
        let pool = Pool::with_workers(4);
        let out = pool.map((0..100u64).collect(), |i| i * i);
        assert_eq!(out, (0..100u64).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn every_job_runs_exactly_once() {
        let counter = AtomicUsize::new(0);
        let pool = Pool::with_workers(8);
        let out = pool.map((0..257usize).collect(), |i| {
            counter.fetch_add(1, Ordering::SeqCst);
            i
        });
        assert_eq!(out.len(), 257);
        assert_eq!(counter.load(Ordering::SeqCst), 257);
    }

    #[test]
    fn serial_and_parallel_schedules_agree() {
        let work = |seed: u64| {
            // A little deterministic number crunching.
            let mut x = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
            for _ in 0..1000 {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
            }
            x
        };
        let serial = Pool::with_workers(1).map((0..64u64).collect(), work);
        let parallel = Pool::with_workers(6).map((0..64u64).collect(), work);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn empty_job_list_is_fine() {
        let jobs: Vec<fn() -> u32> = Vec::new();
        let out = Pool::new().run(jobs);
        assert!(out.is_empty());
    }

    #[test]
    fn uneven_jobs_all_complete() {
        // Stragglers at the front force the refill + steal paths.
        let pool = Pool::with_workers(4);
        let out = pool.map((0..40u64).collect(), |i| {
            let spin = if i < 4 { 200_000 } else { 10 };
            let mut acc = i;
            for k in 0..spin {
                acc = acc.wrapping_mul(31).wrapping_add(k);
            }
            (i, acc)
        });
        for (i, (j, _)) in out.iter().enumerate() {
            assert_eq!(i as u64, *j);
        }
    }

    #[test]
    fn nested_pools_do_not_deadlock() {
        let outer = Pool::with_workers(3);
        let sums = outer.map((0..6u64).collect(), |i| {
            let inner = Pool::with_workers(2);
            inner.map((0..10u64).collect(), move |j| i * 100 + j).into_iter().sum::<u64>()
        });
        assert_eq!(sums.len(), 6);
        assert_eq!(sums[1], (100..110u64).sum::<u64>());
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_rejected() {
        let _ = Pool::with_workers(0);
    }
}
