//! `xp bench`: the in-repo micro-benchmark, replacing the old Criterion
//! benches with a zero-dependency harness.
//!
//! Two things are measured and emitted as `BENCH_simnet.json`:
//!
//! 1. **Engine memory + speed.** Representative simulations report wall
//!    time, event throughput, and the slab's memory story: the old
//!    grow-forever arena retained one slot per event ever scheduled
//!    (`total_events`), while the free-list slab peaks at the number of
//!    *live* events (`peak_live_events`) — the ratio is the resident-
//!    memory improvement on long runs.
//! 2. **Harness scaling.** The same batch of independent measurements
//!    runs on a one-worker pool and on the machine-sized pool; results
//!    must be identical (the pool writes results by job index), and the
//!    wall-clock ratio is the harness speedup.
//!
//! Wall times take the median of three trials; everything simulated is
//! deterministic, so every other number is exactly reproducible.

use crate::pool::Pool;
use crate::scenarios::{baseline_host, measure_quick, saturating_workload, smartnic_system};
use crate::wallclock::WallClock;
use apples_core::json::Json;
use apples_simnet::engine::{event_slot_bytes, BatchPolicy, Engine, RunResult, StageConfig};
use apples_simnet::nf::NfChain;
use apples_simnet::service::{FixedTime, LineRate, NfService};
use apples_workload::WorkloadSpec;

fn median_wall_ms<T>(mut run: impl FnMut() -> T) -> (T, f64) {
    let mut times = Vec::with_capacity(3);
    let mut out = None;
    for _ in 0..3 {
        let clock = WallClock::start();
        out = Some(run());
        times.push(clock.elapsed_ms());
    }
    times.sort_by(f64::total_cmp);
    (out.expect("ran at least once"), times[1])
}

fn engine_scenario(name: &str, mut engine: Engine, wl: &WorkloadSpec, sim_ns: u64) -> Json {
    let (r, wall_ms): (RunResult, f64) = median_wall_ms(|| engine.run(wl, sim_ns, 0));
    let slot = event_slot_bytes() as f64;
    let old_arena_bytes = r.total_events as f64 * slot;
    let slab_peak_bytes = r.peak_live_events as f64 * slot;
    Json::obj()
        .field("scenario", name)
        .field("sim_ms", sim_ns as f64 / 1e6)
        .field("injected", r.injected)
        .field("total_events", r.total_events)
        .field("peak_live_events", r.peak_live_events)
        .field("old_arena_kib", old_arena_bytes / 1024.0)
        .field("slab_peak_kib", slab_peak_bytes / 1024.0)
        .field("memory_ratio", old_arena_bytes / slab_peak_bytes.max(1.0))
        .field("wall_ms", wall_ms)
        .field("events_per_sec", r.total_events as f64 / (wall_ms / 1e3))
}

fn forward_pipeline() -> Engine {
    Engine::new(vec![
        StageConfig::new("front", 2, 128, Box::new(NfService::host_core(NfChain::empty()))),
        StageConfig::new("back", 1, 128, Box::new(LineRate::new("10G", 10e9))),
    ])
}

fn batch_pipeline() -> Engine {
    Engine::new(vec![StageConfig::new(
        "gpu",
        1,
        4096,
        Box::new(FixedTime::new("gpu-kernel", NfChain::empty(), 30)),
    )
    .with_batching(BatchPolicy::new(64, 50_000, 10_000))])
}

fn harness_jobs() -> Vec<u64> {
    (0..8).collect()
}

fn run_harness_batch(pool: &Pool) -> Vec<(u64, u64, u64)> {
    // Alternate deployments so jobs are unevenly sized (exercises the
    // stealing path on multi-core machines).
    pool.map(harness_jobs(), |seed| {
        let wl = saturating_workload(seed);
        let m = if seed % 2 == 0 {
            measure_quick(&baseline_host(2), &wl)
        } else {
            measure_quick(&smartnic_system(), &wl)
        };
        (m.throughput_bps.to_bits(), m.mean_latency_ns.to_bits(), m.policy_drops)
    })
}

/// Runs the micro-benchmark and returns the `BENCH_simnet.json` value.
pub fn run() -> Json {
    let engine_runs = vec![
        engine_scenario(
            "forward-2stage",
            forward_pipeline(),
            &WorkloadSpec::cbr(8e6, 200, 16, 7),
            50_000_000,
        ),
        engine_scenario(
            "batch-gpu",
            batch_pipeline(),
            &WorkloadSpec::cbr(2e6, 200, 16, 7),
            50_000_000,
        ),
    ];

    let serial = Pool::with_workers(1);
    let parallel = Pool::new();
    let (serial_out, serial_ms) = median_wall_ms(|| run_harness_batch(&serial));
    let (parallel_out, parallel_ms) = median_wall_ms(|| run_harness_batch(&parallel));

    Json::obj()
        .field("bench", "simnet")
        .field("event_slot_bytes", event_slot_bytes())
        .field("engine", Json::Arr(engine_runs))
        .field(
            "harness",
            Json::obj()
                .field("jobs", harness_jobs().len())
                .field("workers", parallel.workers())
                .field("serial_wall_ms", serial_ms)
                .field("pool_wall_ms", parallel_ms)
                .field("speedup", serial_ms / parallel_ms.max(1e-9))
                .field("identical_results", serial_out == parallel_out),
        )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_json_has_the_advertised_shape() {
        // One tiny engine run through the same plumbing (the full bench
        // is exercised by `xp bench` itself; keep the test fast).
        let j = engine_scenario(
            "smoke",
            forward_pipeline(),
            &WorkloadSpec::cbr(2e6, 200, 4, 1),
            2_000_000,
        );
        let s = j.render();
        for key in ["scenario", "total_events", "peak_live_events", "memory_ratio", "wall_ms"] {
            assert!(s.contains(key), "missing {key} in {s}");
        }
    }

    #[test]
    fn serial_and_pooled_harness_batches_are_identical() {
        let a = run_harness_batch(&Pool::with_workers(1));
        let b = run_harness_batch(&Pool::with_workers(4));
        assert_eq!(a, b);
    }
}
