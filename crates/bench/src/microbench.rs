//! `xp bench`: the in-repo micro-benchmark, replacing the old Criterion
//! benches with a zero-dependency harness.
//!
//! Three things are measured and emitted as `BENCH_simnet.json`:
//!
//! 1. **Scheduler comparison.** The raw event queue — timing wheel vs.
//!    the binary-heap baseline — is driven with three event-horizon
//!    distributions (uniform, bimodal batch-GPU-style, heavy-tail) at a
//!    fixed live-event population, and through full engine runs on
//!    representative pipelines. Both disciplines must produce identical
//!    results; the wall-clock ratio is the scheduler speedup.
//! 2. **Engine memory + speed.** Representative simulations report wall
//!    time, event throughput, and the slab's memory story: the old
//!    grow-forever arena retained one slot per event ever scheduled
//!    (`total_events`), while the free-list slab peaks at the number of
//!    *live* events (`peak_live_events`) — the ratio is the resident-
//!    memory improvement on long runs.
//! 3. **Cross-experiment parallelism.** The same batch of *independent*
//!    measurements runs through `Pool::with_workers(n)` for n in
//!    {1, 2, 4, cores}; each worker count must reproduce the serial
//!    results byte-for-byte (the pool writes results by job index), and
//!    the wall-clock curve is the experiment-pool speedup. This says
//!    nothing about one big run — that is the next section's job.
//! 4. **Single-run scaling.** One multi-host run split across engine
//!    shards (`Deployment::with_shards`) at shard counts {1, 2, 4},
//!    measured as interleaved same-binary A/B trials against the serial
//!    engine with a bootstrap CI on the per-trial speedups. Results
//!    must be byte-identical to serial at every shard count; speedup
//!    needs as many physical cores as shards.
//! 5. **Scaling diagnosis.** The same sharded run is decomposed into
//!    compute / barrier-stall / merge wall-time fractions (with
//!    bootstrap CIs over trials), Jain's fairness index over per-shard
//!    compute time, and a predicted-max-speedup bound — so a flat
//!    scaling curve is attributable to stall or imbalance, not guessed
//!    at.
//!
//! Wall times take the median of three trials; everything simulated is
//! deterministic, so every other number is exactly reproducible.

use crate::pool::Pool;
use crate::scenarios::{
    baseline_host, faulted, measure_quick, perturbed_workload, saturating_workload,
    smartnic_system, SEVERITY_LADDER,
};
use crate::wallclock::WallClock;
use apples_core::json::Json;
use apples_core::stats::bootstrap_mean_ci;
use apples_obs::{ObsConfig, RunObserver};
use apples_rng::Rng;
use apples_simnet::engine::{
    cold_slot_bytes, hot_slot_bytes, BatchPolicy, Engine, RunResult, StageConfig,
};
use apples_simnet::nf::NfChain;
use apples_simnet::sched::{EventScheduler, SchedulerKind};
use apples_simnet::service::{FixedTime, LineRate, NfService};
use apples_workload::WorkloadSpec;

/// Knobs for a bench run.
#[derive(Debug, Clone, Copy, Default)]
pub struct BenchOptions {
    /// Shrinks simulated windows and event counts ~10x for the CI
    /// perf-sanity stage. All identity checks still run in full.
    pub quick: bool,
    /// Adds the fault-injection robustness section: faulted runs
    /// replayed, checked serial-vs-parallel, and summarized with
    /// per-severity bootstrap CIs.
    pub faults: bool,
    /// Replications per severity in the robustness section; 0 picks the
    /// default (3 in `--quick` mode, 5 otherwise).
    pub replications: usize,
}

/// One engine scenario's throughput record: the relative-gating data
/// `--export-baseline` dumps so future PRs can gate against measured
/// CIs instead of the static floor file.
#[derive(Debug, Clone)]
pub struct EngineBaseline {
    /// Scenario name (`forward-2stage`, `batch-gpu`).
    pub scenario: String,
    /// Scheduler label (`wheel` / `heap`).
    pub scheduler: &'static str,
    /// Median-trial event throughput, events/second.
    pub events_per_sec: f64,
    /// Deterministic bootstrap CI over the per-trial throughputs.
    pub ci_lo: f64,
    /// Upper bound of the same CI.
    pub ci_hi: f64,
    /// Unfused-over-fused wall-clock ratio (≥1 when fusion helps;
    /// ~1.0 on pipelines with no zero-latency hops to fuse).
    pub fused_speedup: f64,
}

/// The numbers CI gates on, pulled out of the JSON for the floor check.
#[derive(Debug, Clone)]
pub struct BenchSummary {
    /// Wheel-scheduler event throughput on the `forward-2stage` engine
    /// scenario, events/second.
    pub forward_wheel_events_per_sec: f64,
    /// True iff every identity check passed: wheel-vs-heap on raw
    /// scheduler streams and engine runs, fused-vs-unfused on every
    /// engine scenario, serial-vs-parallel at every worker count, and
    /// observed-vs-unobserved engine results.
    pub identical_results: bool,
    /// Span-profiler-on over observability-off wall-clock ratio on the
    /// firewall pipeline — the "cheap enough to leave on" claim
    /// (1.0 = free; the CI gate caps this via
    /// `reports/obs_overhead.txt`).
    pub obs_overhead_ratio: f64,
    /// Per engine scenario × scheduler: throughput, CI, fused speedup.
    pub engine_baselines: Vec<EngineBaseline>,
}

fn median_wall_ms<T>(mut run: impl FnMut() -> T) -> (T, f64) {
    let mut times = Vec::with_capacity(3);
    let mut out = None;
    for _ in 0..3 {
        let clock = WallClock::start();
        out = Some(run());
        times.push(clock.elapsed_ms());
    }
    times.sort_by(f64::total_cmp);
    (out.expect("ran at least once"), times[1])
}

// ---------------------------------------------------------------------
// Raw scheduler microbenchmark: heap vs. wheel per horizon distribution.
// ---------------------------------------------------------------------

/// How far ahead of "now" new events land, mimicking distinct workload
/// shapes the engine generates.
struct HorizonDist {
    name: &'static str,
    sample: fn(&mut Rng) -> u64,
}

fn uniform_delta(rng: &mut Rng) -> u64 {
    rng.range_u64(1, 10_000)
}

/// Batch-GPU shape: dense near-term completions plus sparse far-out
/// kernel/timeout events.
fn bimodal_delta(rng: &mut Rng) -> u64 {
    if rng.range_u64(0, 10) < 9 {
        rng.range_u64(1, 200)
    } else {
        rng.range_u64(50_000, 150_000)
    }
}

/// Heavy tail: mostly near-term with rare horizons far enough to cross
/// wheel levels (well past the level-0 window into the upper levels).
fn heavy_tail_delta(rng: &mut Rng) -> u64 {
    let u = rng.next_f64();
    let d = (1.0 / (1.0 - u).max(1e-12)).powf(2.0) as u64;
    1 + d.min(1 << 33)
}

const DISTRIBUTIONS: [HorizonDist; 3] = [
    HorizonDist { name: "uniform", sample: uniform_delta },
    HorizonDist { name: "bimodal-batch-gpu", sample: bimodal_delta },
    HorizonDist { name: "heavy-tail", sample: heavy_tail_delta },
];

/// Drives one scheduler through a hold-one-push-one loop at a live
/// population of `live`, for `ops` drains; returns a digest of the pop
/// stream (count and a running hash of (time, seq)) for cross-scheduler
/// identity checking.
fn drive_scheduler(kind: SchedulerKind, dist: &HorizonDist, live: usize, ops: usize) -> (u64, u64) {
    let mut rng = Rng::seed_from_u64(0xBEEF_0001);
    let mut s = EventScheduler::new(kind);
    let mut seq = 0u64;
    for _ in 0..live {
        s.push((dist.sample)(&mut rng), seq, 0);
        seq += 1;
    }
    let mut bucket = Vec::new();
    let mut popped = 0u64;
    let mut digest = 0u64;
    while popped < ops as u64 {
        s.drain_bucket(&mut bucket);
        let Some(&(now, _, _)) = bucket.first() else { break };
        for &(t, q, _) in &bucket {
            digest = digest
                .wrapping_mul(0x100000001B3)
                .wrapping_add(t)
                .wrapping_mul(0x100000001B3)
                .wrapping_add(q);
            popped += 1;
        }
        // Refill: one fresh event per popped event keeps the live
        // population constant, scheduled off the current time the way
        // the engine schedules completions off arrivals.
        for _ in 0..bucket.len() {
            s.push(now + (dist.sample)(&mut rng), seq, 0);
            seq += 1;
        }
    }
    (popped, digest)
}

fn sched_microbench(quick: bool, all_identical: &mut bool) -> Json {
    let live = 256;
    let ops = if quick { 40_000 } else { 400_000 };
    let runs = DISTRIBUTIONS
        .iter()
        .map(|dist| {
            let (wheel_out, wheel_ms) =
                median_wall_ms(|| drive_scheduler(SchedulerKind::Wheel, dist, live, ops));
            let (heap_out, heap_ms) =
                median_wall_ms(|| drive_scheduler(SchedulerKind::Heap, dist, live, ops));
            let identical = wheel_out == heap_out;
            *all_identical &= identical;
            let ops_done = wheel_out.0 as f64;
            Json::obj()
                .field("distribution", dist.name)
                .field("live_events", live)
                .field("ops", ops_done)
                .field("wheel_wall_ms", wheel_ms)
                .field("heap_wall_ms", heap_ms)
                .field("wheel_mops", ops_done / 1e3 / wheel_ms.max(1e-9))
                .field("heap_mops", ops_done / 1e3 / heap_ms.max(1e-9))
                .field("wheel_speedup", heap_ms / wheel_ms.max(1e-9))
                .field("identical_results", identical)
        })
        .collect();
    Json::Arr(runs)
}

// ---------------------------------------------------------------------
// Engine scenarios, run under both schedulers.
// ---------------------------------------------------------------------

struct EngineOutcome {
    json: Json,
    baseline: EngineBaseline,
    identical_to_unfused: bool,
    result: RunResult,
}

/// Trials per engine scenario configuration (the bootstrap CI resamples
/// these per-trial throughputs).
const ENGINE_TRIALS: usize = 3;
const BASELINE_RESAMPLES: usize = 200;

/// Runs `engine` `ENGINE_TRIALS` times, returning the (identical)
/// result and every trial's wall time.
fn engine_trials(engine: &mut Engine, wl: &WorkloadSpec, sim_ns: u64) -> (RunResult, Vec<f64>) {
    let mut walls = Vec::with_capacity(ENGINE_TRIALS);
    let mut out = None;
    for _ in 0..ENGINE_TRIALS {
        let clock = WallClock::start();
        out = Some(engine.run(wl, sim_ns, 0));
        walls.push(clock.elapsed_ms());
    }
    (out.expect("ran at least once"), walls)
}

fn median_of(walls: &[f64]) -> f64 {
    let mut sorted = walls.to_vec();
    sorted.sort_by(f64::total_cmp);
    sorted[sorted.len() / 2]
}

fn engine_scenario(
    name: &str,
    kind: SchedulerKind,
    build: impl Fn() -> Engine,
    wl: &WorkloadSpec,
    sim_ns: u64,
) -> EngineOutcome {
    let mut fused_engine = build().with_scheduler(kind);
    let (r, walls) = engine_trials(&mut fused_engine, wl, sim_ns);
    // The unfused reference: same scheduler, every zero-latency hop
    // re-enqueued through it. Must be byte-identical; the wall-clock
    // ratio is what fusion buys on this pipeline shape.
    let mut unfused_engine = build().with_scheduler(kind).with_fusion(false);
    let (r_unfused, unfused_walls) = engine_trials(&mut unfused_engine, wl, sim_ns);
    let identical_to_unfused = r == r_unfused;
    let wall_ms = median_of(&walls);
    let unfused_wall_ms = median_of(&unfused_walls);
    let fused_speedup = unfused_wall_ms / wall_ms.max(1e-9);
    // SoA memory story: the hot slot is what wheel buckets move per
    // event; per-packet events add one cold pool slot touched only at
    // dispatch. The old AoS design paid the whole (hot + cold) footprint
    // inside every bucket entry *and* grew its arena forever.
    let slot = (hot_slot_bytes() + cold_slot_bytes()) as f64;
    let old_arena_bytes = r.total_events as f64 * slot;
    let slab_peak_bytes = r.peak_live_events as f64 * slot;
    let events_per_sec = r.total_events as f64 / (wall_ms / 1e3);
    let samples: Vec<f64> =
        walls.iter().map(|w| r.total_events as f64 / (w / 1e3).max(1e-9)).collect();
    let ci = bootstrap_mean_ci(&samples, BASELINE_RESAMPLES, 0xE7E7);
    let scheduler = match kind {
        SchedulerKind::Wheel => "wheel",
        SchedulerKind::Heap => "heap",
    };
    let json = Json::obj()
        .field("scenario", name)
        .field("scheduler", scheduler)
        .field("sim_ms", sim_ns as f64 / 1e6)
        .field("injected", r.injected)
        .field("total_events", r.total_events)
        .field("peak_live_events", r.peak_live_events)
        .field("old_arena_kib", old_arena_bytes / 1024.0)
        .field("slab_peak_kib", slab_peak_bytes / 1024.0)
        .field("memory_ratio", old_arena_bytes / slab_peak_bytes.max(1.0))
        .field("wall_ms", wall_ms)
        .field("events_per_sec", events_per_sec)
        .field("events_per_sec_ci_lo", ci.lo)
        .field("events_per_sec_ci_hi", ci.hi)
        .field("unfused_wall_ms", unfused_wall_ms)
        .field("fused_speedup", fused_speedup)
        .field("identical_to_unfused", identical_to_unfused);
    EngineOutcome {
        json,
        baseline: EngineBaseline {
            scenario: name.to_owned(),
            scheduler,
            events_per_sec,
            ci_lo: ci.lo,
            ci_hi: ci.hi,
            fused_speedup,
        },
        identical_to_unfused,
        result: r,
    }
}

fn forward_pipeline() -> Engine {
    Engine::new(vec![
        StageConfig::new("front", 2, 128, Box::new(NfService::host_core(NfChain::empty()))),
        StageConfig::new("back", 1, 128, Box::new(LineRate::new("10G", 10e9))),
    ])
}

fn batch_pipeline() -> Engine {
    Engine::new(vec![StageConfig::new(
        "gpu",
        1,
        4096,
        Box::new(FixedTime::new("gpu-kernel", NfChain::empty(), 30)),
    )
    .with_batching(BatchPolicy::new(64, 50_000, 10_000))])
}

// ---------------------------------------------------------------------
// Cross-experiment parallelism: the measurement batch at each worker
// count. This scales the *pool of independent experiments*, not a
// single run — a lone big scenario gains nothing here (that is what
// the single-run scaling section below measures).
// ---------------------------------------------------------------------

fn harness_jobs() -> Vec<u64> {
    (0..8).collect()
}

fn run_harness_batch(pool: &Pool) -> Vec<(u64, u64, u64)> {
    // Alternate deployments so jobs are unevenly sized (exercises the
    // stealing path on multi-core machines).
    pool.map(harness_jobs(), |seed| {
        let wl = saturating_workload(seed);
        let m = if seed % 2 == 0 {
            measure_quick(&baseline_host(2), &wl)
        } else {
            measure_quick(&smartnic_system(), &wl)
        };
        (m.throughput_bps.to_bits(), m.mean_latency_ns.to_bits(), m.policy_drops)
    })
}

/// The sweep's worker counts: {1, 2, 4, machine parallelism}, deduped
/// and sorted so the curve is monotone in n even on small machines.
fn sweep_worker_counts() -> Vec<usize> {
    let machine = Pool::new().workers();
    let mut counts = vec![1, 2, 4, machine];
    counts.sort_unstable();
    counts.dedup();
    counts
}

fn harness_sweep(all_identical: &mut bool) -> Json {
    let counts = sweep_worker_counts();
    let mut serial_out: Option<Vec<(u64, u64, u64)>> = None;
    let mut serial_ms = 0.0f64;
    let entries = counts
        .into_iter()
        .map(|n| {
            let pool = Pool::with_workers(n);
            let (out, wall_ms) = median_wall_ms(|| run_harness_batch(&pool));
            let identical = match &serial_out {
                None => {
                    serial_out = Some(out);
                    serial_ms = wall_ms;
                    true // n = 1 defines the reference
                }
                Some(reference) => *reference == out,
            };
            *all_identical &= identical;
            Json::obj()
                .field("workers", n)
                .field("wall_ms", wall_ms)
                .field("speedup", serial_ms / wall_ms.max(1e-9))
                .field("identical_results", identical)
        })
        .collect();
    Json::obj()
        .field("jobs", harness_jobs().len())
        .field("machine_workers", Pool::new().workers())
        .field("serial_wall_ms", serial_ms)
        .field("cross_experiment_parallelism", Json::Arr(entries))
}

// ---------------------------------------------------------------------
// Single-run scaling: one multi-host run split across engine shards.
// ---------------------------------------------------------------------

/// The multi-host scenario the intra-run scaling measurement uses: an
/// 8-host replicated cluster behind an ECMP splitter — the topology
/// the shard planner splits into a splitter shard plus host shards.
fn scaling_deployment() -> apples_simnet::system::Deployment {
    apples_simnet::system::Deployment::replicated_cluster(
        "cluster-8x2",
        8,
        2,
        0.1,
        crate::scenarios::firewall_chain,
    )
}

/// A measurement reduced to its identity-relevant bit patterns.
fn scaling_digest(m: &apples_simnet::system::Measurement) -> (u64, u64, u64, u64) {
    (
        m.throughput_bps.to_bits(),
        m.mean_latency_ns.to_bits(),
        m.p99_latency_ns.to_bits(),
        m.policy_drops,
    )
}

/// Interleaved same-binary A/B at each shard count: serial and sharded
/// trials alternate (so drift hits both arms equally), the speedup is
/// the ratio of median walls, and the CI bootstraps the per-trial-pair
/// speedups. Byte-identity to the serial reference is required at
/// every shard count regardless of core count; wall-clock speedup
/// additionally needs `shards` physical cores.
fn single_run_scaling(quick: bool, all_identical: &mut bool) -> Json {
    const SCALING_TRIALS: usize = 3;
    let sim_ns: u64 = if quick { 10_000_000 } else { 40_000_000 };
    let wl = WorkloadSpec::cbr(20e6, 1500, 64, 5);
    let serial = scaling_deployment();
    let reference = scaling_digest(&serial.run(&wl, sim_ns, 0));
    // lint: allow(D3, reason = "core-count probe only: reads available_parallelism, spawns nothing; reported so scaling numbers are interpretable on small runners")
    let cores = std::thread::available_parallelism().map_or(1, usize::from);
    let entries = [1usize, 2, 4]
        .into_iter()
        .map(|n| {
            let sharded = scaling_deployment().with_shards(n);
            let mut serial_walls = Vec::with_capacity(SCALING_TRIALS);
            let mut sharded_walls = Vec::with_capacity(SCALING_TRIALS);
            let mut speedups = Vec::with_capacity(SCALING_TRIALS);
            let mut identical = true;
            for _ in 0..SCALING_TRIALS {
                let clock = WallClock::start();
                let a = serial.run(&wl, sim_ns, 0);
                let serial_ms = clock.elapsed_ms();
                let clock = WallClock::start();
                let b = sharded.run(&wl, sim_ns, 0);
                let sharded_ms = clock.elapsed_ms();
                identical &= scaling_digest(&a) == reference;
                identical &= scaling_digest(&b) == reference;
                serial_walls.push(serial_ms);
                sharded_walls.push(sharded_ms);
                speedups.push(serial_ms / sharded_ms.max(1e-9));
            }
            // One extra untimed diagnosed run per sharded count: the
            // barrier loop's wall-time lanes quantify the 1-core caveat
            // (how much of the sharded wall is stall, how even the load
            // is) instead of leaving it as prose. The diagnosed
            // measurement must still match the serial reference.
            let diagnosis = if n > 1 {
                let (m, _, diag) = sharded.run_diagnosed(&wl, sim_ns, 0, &ObsConfig::diagnosis());
                identical &= scaling_digest(&m) == reference;
                diag.map_or_else(Json::obj, |d| {
                    let (compute, barrier, merge) = d.fractions();
                    Json::obj()
                        .field("compute_fraction", compute)
                        .field("barrier_stall_fraction", barrier)
                        .field("merge_fraction", merge)
                        .field("jain_index", d.jain_index())
                        .field("predicted_max_speedup", d.predicted_max_speedup())
                })
            } else {
                Json::obj()
            };
            *all_identical &= identical;
            let serial_ms = median_of(&serial_walls);
            let sharded_ms = median_of(&sharded_walls);
            let speedup = serial_ms / sharded_ms.max(1e-9);
            let ci = bootstrap_mean_ci(&speedups, BASELINE_RESAMPLES, 0x5CA1);
            Json::obj()
                .field("shards", n)
                .field("serial_wall_ms", serial_ms)
                .field("sharded_wall_ms", sharded_ms)
                .field("speedup", speedup)
                .field("speedup_ci_lo", ci.lo)
                .field("speedup_ci_hi", ci.hi)
                .field("scaling_efficiency", speedup / n as f64)
                .field("identical_results", identical)
                .field("diagnosis", diagnosis)
        })
        .collect();
    Json::obj()
        .field("scenario", "replicated-cluster-8x2")
        .field("sim_ms", sim_ns as f64 / 1e6)
        .field("cores_available", cores)
        .field("scaling", Json::Arr(entries))
}

// ---------------------------------------------------------------------
// Scaling diagnosis: where the sharded wall clock actually goes.
// ---------------------------------------------------------------------

/// Decomposes the sharded engine's parallel wall time. Each trial runs
/// the scaling deployment with the diagnosis observer set attached
/// (spans + the sim-time metrics ring — no trace ring, so the run still
/// shards) and reads back the per-shard wall-time lanes the barrier
/// loop records: compute inside `process_epoch`, stall inside the two
/// epoch barriers, and mailbox merge/flush. Per-trial compute /
/// barrier-stall / merge fractions get deterministic bootstrap CIs;
/// Jain's fairness index over per-shard compute time and the derived
/// predicted-max-speedup bound quantify load imbalance. Every diagnosed
/// measurement must stay byte-identical to the unobserved serial
/// reference (folded into `identical_results`).
fn scaling_diagnosis_section(quick: bool, all_identical: &mut bool) -> Json {
    const DIAG_TRIALS: usize = 3;
    let sim_ns: u64 = if quick { 10_000_000 } else { 40_000_000 };
    let wl = WorkloadSpec::cbr(20e6, 1500, 64, 5);
    let reference = scaling_digest(&scaling_deployment().run(&wl, sim_ns, 0));
    let cfg = ObsConfig::diagnosis();
    let entries = [2usize, 4]
        .into_iter()
        .map(|n| {
            let d = scaling_deployment().with_shards(n);
            let mut compute = Vec::with_capacity(DIAG_TRIALS);
            let mut barrier = Vec::with_capacity(DIAG_TRIALS);
            let mut merge = Vec::with_capacity(DIAG_TRIALS);
            let mut identical = true;
            let mut last = None;
            for _ in 0..DIAG_TRIALS {
                let (m, _, diag) = d.run_diagnosed(&wl, sim_ns, 0, &cfg);
                identical &= scaling_digest(&m) == reference;
                if let Some(diag) = diag {
                    let (c, b, g) = diag.fractions();
                    compute.push(c);
                    barrier.push(b);
                    merge.push(g);
                    last = Some(diag);
                }
            }
            // A missing diag means the planner silently fell back to
            // serial — the cluster plan must stay shardable.
            *all_identical &= identical && last.is_some();
            let ci = |v: &[f64], salt: u64| bootstrap_mean_ci(v, BASELINE_RESAMPLES, 0xD1A6 ^ salt);
            let (c_ci, b_ci, g_ci) = (ci(&compute, 1), ci(&barrier, 2), ci(&merge, 3));
            let detail = last.map_or_else(Json::obj, |diag| diag.to_json());
            Json::obj()
                .field("shards", n)
                .field("trials", DIAG_TRIALS)
                .field("compute_fraction", c_ci.mean)
                .field("compute_fraction_ci_lo", c_ci.lo)
                .field("compute_fraction_ci_hi", c_ci.hi)
                .field("barrier_stall_fraction", b_ci.mean)
                .field("barrier_stall_fraction_ci_lo", b_ci.lo)
                .field("barrier_stall_fraction_ci_hi", b_ci.hi)
                .field("merge_fraction", g_ci.mean)
                .field("merge_fraction_ci_lo", g_ci.lo)
                .field("merge_fraction_ci_hi", g_ci.hi)
                .field("fractions_sum", c_ci.mean + b_ci.mean + g_ci.mean)
                .field("identical_results", identical)
                .field("last_trial", detail)
        })
        .collect();
    Json::obj()
        .field("scenario", "replicated-cluster-8x2")
        .field("sim_ms", sim_ns as f64 / 1e6)
        .field("bootstrap_resamples", BASELINE_RESAMPLES)
        .field("diagnosis", Json::Arr(entries))
}

// ---------------------------------------------------------------------
// Robustness section: faulted runs must stay deterministic too.
// ---------------------------------------------------------------------

/// One faulted measurement reduced to its bit pattern for identity
/// checks: throughput, latency, and the three fault counters.
fn faulted_digest(seed: u64, severity: f64) -> (u64, u64, u64, u64, u64) {
    let wl = perturbed_workload(120.0, seed, severity);
    let m = measure_quick(&faulted(smartnic_system(), severity), &wl);
    (
        m.throughput_bps.to_bits(),
        m.mean_latency_ns.to_bits(),
        m.fault_drops,
        m.injected_drops,
        m.corrupted,
    )
}

/// Per-severity robustness entries: `replications` faulted measurements
/// per severity, run serially and on the machine-size pool (which must
/// agree bit-for-bit), replayed once (which must also agree), and
/// summarized with a deterministic bootstrap CI on throughput.
fn robustness_section(replications: usize, all_identical: &mut bool) -> Json {
    // The shared ladder minus its clean rung: severity 0 is the
    // baseline every other bench section already measures.
    let entries = SEVERITY_LADDER
        .iter()
        .filter(|&&(_, s)| s > 0.0)
        .map(|&(name, s)| {
            let seeds: Vec<u64> = (0..replications as u64).map(|i| 301 + i).collect();
            let serial = Pool::with_workers(1).map(seeds.clone(), |seed| faulted_digest(seed, s));
            let pooled = Pool::new().map(seeds.clone(), |seed| faulted_digest(seed, s));
            let parallel_identical = serial == pooled;
            let replayed = Pool::with_workers(1).map(seeds, |seed| faulted_digest(seed, s));
            let replay_identical = serial == replayed;
            *all_identical &= parallel_identical && replay_identical;
            let gbps: Vec<f64> = serial.iter().map(|d| f64::from_bits(d.0) / 1e9).collect();
            let ci = bootstrap_mean_ci(&gbps, 300, 0xB007);
            let fault_drops: u64 = serial.iter().map(|d| d.2 + d.3).sum();
            Json::obj()
                .field("severity", name)
                .field("replications", replications)
                .field("gbps_mean", ci.mean)
                .field("gbps_ci_lo", ci.lo)
                .field("gbps_ci_hi", ci.hi)
                .field("bootstrap_resamples", ci.resamples)
                .field("fault_drops", fault_drops)
                .field("serial_parallel_identical", parallel_identical)
                .field("replay_identical", replay_identical)
        })
        .collect();
    Json::Arr(entries)
}

// ---------------------------------------------------------------------
// Observability section: zero-cost off, bounded cost on.
// ---------------------------------------------------------------------

/// Interleaved overhead timing: each round runs the three
/// configurations back-to-back (off, spans, full) and computes the two
/// overhead ratios *within the round*, so thermal/frequency drift hits
/// both sides of each ratio equally; the per-configuration wall times
/// reported are running minima, and the gated ratios are the medians of
/// the per-round ratios — robust to a single noisy round in a way that
/// min-of-independent-blocks is not.
struct OverheadTiming<A, B, C> {
    outs: (A, B, C),
    min_ms: [f64; 3],
    /// (spans/off, full/off) medians across rounds.
    ratios: (f64, f64),
}

fn interleaved_overhead<A, B, C>(
    trials: usize,
    mut off: impl FnMut() -> A,
    mut spans: impl FnMut() -> B,
    mut full: impl FnMut() -> C,
) -> OverheadTiming<A, B, C> {
    let mut min_ms = [f64::INFINITY; 3];
    let mut spans_ratios = Vec::new();
    let mut full_ratios = Vec::new();
    // One untimed warmup round: the first execution pays cold caches and
    // page faults for all three configurations, which would otherwise
    // land entirely on `off` and skew every ratio of the first round.
    let mut outs = Some((off(), spans(), full()));
    for _ in 0..trials.max(1) {
        let c = WallClock::start();
        let a = off();
        let off_ms = c.elapsed_ms();
        let c = WallClock::start();
        let b = spans();
        let spans_ms = c.elapsed_ms();
        let c = WallClock::start();
        let f = full();
        let full_ms = c.elapsed_ms();
        min_ms[0] = min_ms[0].min(off_ms);
        min_ms[1] = min_ms[1].min(spans_ms);
        min_ms[2] = min_ms[2].min(full_ms);
        spans_ratios.push(spans_ms / off_ms.max(1e-9));
        full_ratios.push(full_ms / off_ms.max(1e-9));
        outs = Some((a, b, f));
    }
    let median = |v: &mut Vec<f64>| {
        v.sort_by(f64::total_cmp);
        v[v.len() / 2]
    };
    OverheadTiming {
        outs: outs.expect("ran at least once"),
        min_ms,
        ratios: (median(&mut spans_ratios), median(&mut full_ratios)),
    }
}

/// Measures the observability layer against itself:
///
/// - **Zero cost when off.** A plain `Engine::run` and a fully-observed
///   run of the same pipeline must produce equal [`RunResult`]s — the
///   hooks may not change a single simulated number. Folded into
///   `identical_results`.
/// - **Bounded cost when on.** The firewall deployment is timed three
///   ways: observability off, the diagnosis set (span profiling plus
///   the sim-time metrics ring — the pieces meant to stay on
///   everywhere, gated <5% in CI against `reports/obs_overhead.txt`),
///   and everything on (tracing + telemetry + spans + time series,
///   reported so the cost of a fully-traced run is a number, not a
///   guess).
///
/// The JSON also carries one observed run's telemetry, span profile,
/// scheduler counters, and trace-ring occupancy so `BENCH_simnet.json`
/// documents what the layer sees, not just what it costs.
fn obs_section(quick: bool, all_identical: &mut bool, overhead_ratio: &mut f64) -> Json {
    // Zero-cost identity on the engine itself.
    let wl = WorkloadSpec::cbr(8e6, 200, 16, 7);
    let sim_ns: u64 = if quick { 5_000_000 } else { 20_000_000 };
    let plain = forward_pipeline().run(&wl, sim_ns, 0);
    let mut observed_engine =
        forward_pipeline().with_observer(RunObserver::new(&ObsConfig::full()));
    let observed = observed_engine.run(&wl, sim_ns, 0);
    let zero_cost = plain == observed;
    *all_identical &= zero_cost;

    // Enabled overhead on the representative firewall deployment, where
    // per-packet NF work (not hook bookkeeping) dominates.
    let d = baseline_host(2);
    let dwl = saturating_workload(1);
    let run_ns: u64 = if quick { 10_000_000 } else { 20_000_000 };
    // Rounds are cheap (three short runs each); enough of them makes
    // the median ratio robust to a loaded machine.
    let trials = if quick { 9 } else { 11 };
    // The gated middle configuration is the leave-on diagnosis set:
    // span profiling plus the sim-time metrics ring, both held under
    // the CI ceiling together.
    let diagnosis = ObsConfig::diagnosis();
    let timing = interleaved_overhead(
        trials,
        || d.run(&dwl, run_ns, 0),
        || d.run_observed(&dwl, run_ns, 0, &diagnosis),
        || d.run_observed(&dwl, run_ns, 0, &ObsConfig::full()),
    );
    let (m_off, (m_spans, _), (m_on, obs)) = timing.outs;
    let [off_ms, spans_ms, full_ms] = timing.min_ms;
    let digest = |m: &apples_simnet::system::Measurement| {
        (
            m.throughput_bps.to_bits(),
            m.mean_latency_ns.to_bits(),
            m.p99_latency_ns.to_bits(),
            m.policy_drops,
            m.fault_drops,
            m.watts.to_bits(),
        )
    };
    let observed_numbers_identical =
        digest(&m_off) == digest(&m_on) && digest(&m_off) == digest(&m_spans);
    *all_identical &= observed_numbers_identical;
    let (ratio, full_ratio) = timing.ratios;
    *overhead_ratio = ratio;

    let names: Vec<String> = m_on.stages.iter().map(|s| s.name.to_owned()).collect();
    let telemetry = obs.telemetry.as_ref().map_or_else(Json::obj, |t| t.to_json(&names));
    let spans = obs.spans.as_ref().map_or_else(Json::obj, |s| s.to_json());
    let trace = obs.tracer.as_ref().map_or_else(Json::obj, |t| {
        Json::obj()
            .field("capacity", t.capacity())
            .field("retained", t.len())
            .field("emitted", t.emitted())
            .field("overwritten", t.overwritten())
    });
    Json::obj()
        .field("zero_cost_identical", zero_cost)
        .field("observed_numbers_identical", observed_numbers_identical)
        .field("off_wall_ms", off_ms)
        .field("spans_on_wall_ms", spans_ms)
        .field("overhead_ratio", ratio)
        .field("full_on_wall_ms", full_ms)
        .field("full_overhead_ratio", full_ratio)
        .field("trace", trace)
        .field("sched_counters", obs.sched.to_json())
        .field("spans", spans)
        .field("telemetry", telemetry)
}

/// Measures the runtime order sanitizer against itself, mirroring
/// [`obs_section`]:
///
/// - **No simulated change.** A plain run, a check-only sanitized run,
///   and a perturbed sanitized run of the firewall deployment must
///   produce byte-identical measurements (the sanitizer asserts the
///   engine's ordering invariants and the perturber's shuffle must be
///   fully undone by the seq-keyed merge). Folded into
///   `identical_results`.
/// - **Reported cost when on.** The deployment is timed three ways —
///   sanitizer off, check-only, and with the interleaving perturber —
///   and the median within-round ratios land in `BENCH_simnet.json`
///   (reported, not gated: the sanitizer is a debugging/CI mode, never
///   the production path).
///
/// The JSON also carries the perturbed run's [`SanitizerReport`] so the
/// bench documents how much ordering surface was actually checked.
///
/// [`SanitizerReport`]: apples_simnet::sanitizer::SanitizerReport
fn sanitizer_section(quick: bool, all_identical: &mut bool) -> Json {
    let d = baseline_host(2);
    let wl = saturating_workload(1);
    let run_ns: u64 = if quick { 10_000_000 } else { 20_000_000 };
    let trials = if quick { 9 } else { 11 };
    let timing = interleaved_overhead(
        trials,
        || d.run(&wl, run_ns, 0),
        || d.run_sanitized(&wl, run_ns, 0, None),
        || d.run_sanitized(&wl, run_ns, 0, Some(0xD15F)),
    );
    let (m_off, (m_check, _), (m_perturb, report)) = timing.outs;
    let [off_ms, check_ms, perturb_ms] = timing.min_ms;
    let digest = |m: &apples_simnet::system::Measurement| {
        (
            m.throughput_bps.to_bits(),
            m.mean_latency_ns.to_bits(),
            m.p99_latency_ns.to_bits(),
            m.policy_drops,
            m.fault_drops,
            m.watts.to_bits(),
        )
    };
    let identical = digest(&m_off) == digest(&m_check) && digest(&m_off) == digest(&m_perturb);
    *all_identical &= identical;
    let (check_ratio, perturb_ratio) = timing.ratios;
    Json::obj()
        .field("sanitized_numbers_identical", identical)
        .field("off_wall_ms", off_ms)
        .field("check_wall_ms", check_ms)
        .field("check_overhead_ratio", check_ratio)
        .field("perturb_wall_ms", perturb_ms)
        .field("perturb_overhead_ratio", perturb_ratio)
        .field(
            "report",
            Json::obj()
                .field("buckets", report.buckets)
                .field("events", report.events)
                .field("perturbed", report.perturbed)
                .field("max_bucket", report.max_bucket),
        )
}

/// The `experiment_store` section: cold-vs-warm wall clock for the
/// content-addressed experiment store (DESIGN.md §13). Each cold trial
/// wipes the store and executes a representative experiment subset;
/// each warm trial replays the same subset from cache. Per-trial wall
/// times get bootstrap CIs; the warm pass must be 100% hits with
/// output byte-identical to the cold pass (folded into
/// `identical_results`).
fn experiment_store_section(quick: bool, all_identical: &mut bool) -> Json {
    use crate::xpall::{run_all, XpAllOptions};
    let ids: &[&str] = if quick {
        &["fig1a", "ex42", "robustness-verdict"]
    } else {
        &["table1", "fig1a", "fig2", "ex42", "telemetry", "robustness-verdict"]
    };
    let store_root =
        std::env::temp_dir().join(format!("apples-store-bench-{}", std::process::id()));
    let mut opts = XpAllOptions::for_ids(ids.iter().map(|s| (*s).to_string()).collect());
    opts.store_root = store_root.clone();

    let trials = if quick { 3 } else { 5 };
    let mut cold_ms = Vec::with_capacity(trials);
    let mut warm_ms = Vec::with_capacity(trials);
    let mut identical = true;
    let mut warm_hit_rate = 0.0;
    for _ in 0..trials {
        let _ = std::fs::remove_dir_all(&store_root);
        let clock = WallClock::start();
        let cold = run_all(&opts).expect("bench subset runs");
        cold_ms.push(clock.elapsed_ms());
        let clock = WallClock::start();
        let warm = run_all(&opts).expect("bench subset replays");
        warm_ms.push(clock.elapsed_ms());
        identical &= warm.stdout == cold.stdout;
        identical &= warm.stats.hit == warm.stats.nodes && warm.stats.executed.is_empty();
        warm_hit_rate = warm.stats.hit as f64 / warm.stats.nodes.max(1) as f64;
    }
    let _ = std::fs::remove_dir_all(&store_root);
    *all_identical &= identical;

    let cold_ci = bootstrap_mean_ci(&cold_ms, BASELINE_RESAMPLES, 0x57CD);
    let warm_ci = bootstrap_mean_ci(&warm_ms, BASELINE_RESAMPLES, 0x57CE);
    Json::obj()
        .field("experiments", ids.len() as f64)
        .field("trials", trials as f64)
        .field("cold_wall_ms", cold_ci.mean)
        .field("cold_wall_ms_ci_lo", cold_ci.lo)
        .field("cold_wall_ms_ci_hi", cold_ci.hi)
        .field("warm_wall_ms", warm_ci.mean)
        .field("warm_wall_ms_ci_lo", warm_ci.lo)
        .field("warm_wall_ms_ci_hi", warm_ci.hi)
        .field("warm_speedup", cold_ci.mean / warm_ci.mean.max(1e-9))
        .field("warm_hit_rate", warm_hit_rate)
        .field("warm_identical_to_cold", identical)
}

/// Runs the micro-benchmark; returns the `BENCH_simnet.json` value and
/// the summary numbers the CI floor check gates on.
pub fn run_with_summary(opts: &BenchOptions) -> (Json, BenchSummary) {
    let engine_sim_ns: u64 = if opts.quick { 10_000_000 } else { 50_000_000 };
    let mut all_identical = true;

    let scheduler_runs = sched_microbench(opts.quick, &mut all_identical);

    let mut engine_runs = Vec::new();
    let mut engine_baselines = Vec::new();
    let mut forward_wheel_events_per_sec = 0.0;
    for (name, build, wl) in [
        ("forward-2stage", forward_pipeline as fn() -> Engine, WorkloadSpec::cbr(8e6, 200, 16, 7)),
        ("batch-gpu", batch_pipeline as fn() -> Engine, WorkloadSpec::cbr(2e6, 200, 16, 7)),
    ] {
        let wheel = engine_scenario(name, SchedulerKind::Wheel, build, &wl, engine_sim_ns);
        let heap = engine_scenario(name, SchedulerKind::Heap, build, &wl, engine_sim_ns);
        let identical = wheel.result == heap.result;
        all_identical &= identical;
        all_identical &= wheel.identical_to_unfused && heap.identical_to_unfused;
        if name == "forward-2stage" {
            forward_wheel_events_per_sec = wheel.baseline.events_per_sec;
        }
        engine_baselines.push(wheel.baseline);
        engine_baselines.push(heap.baseline);
        engine_runs.push(wheel.json.field("identical_to_heap", identical));
        engine_runs.push(heap.json.field("identical_to_heap", identical));
    }

    let harness = harness_sweep(&mut all_identical);
    let scaling = single_run_scaling(opts.quick, &mut all_identical);
    let scaling_diag = scaling_diagnosis_section(opts.quick, &mut all_identical);
    let mut obs_overhead_ratio = 1.0;
    let observability = obs_section(opts.quick, &mut all_identical, &mut obs_overhead_ratio);
    let sanitizer = sanitizer_section(opts.quick, &mut all_identical);
    let experiment_store = experiment_store_section(opts.quick, &mut all_identical);

    let mut json = Json::obj()
        .field("bench", "simnet")
        .field("quick", opts.quick)
        .field("hot_slot_bytes", hot_slot_bytes())
        .field("cold_slot_bytes", cold_slot_bytes())
        .field("scheduler", scheduler_runs)
        .field("engine", Json::Arr(engine_runs))
        .field("harness", harness)
        .field("single_run_scaling", scaling)
        .field("scaling_diagnosis", scaling_diag)
        .field("observability", observability)
        .field("sanitizer", sanitizer)
        .field("experiment_store", experiment_store);
    if opts.faults {
        let replications = match opts.replications {
            0 if opts.quick => 3,
            0 => 5,
            n => n,
        };
        json = json.field("robustness", robustness_section(replications, &mut all_identical));
    }
    let json = json.field("identical_results", all_identical);
    (
        json,
        BenchSummary {
            forward_wheel_events_per_sec,
            identical_results: all_identical,
            obs_overhead_ratio,
            engine_baselines,
        },
    )
}

/// The `--export-baseline` payload: per-scenario throughput with its
/// bootstrap CI, consumed by `--baseline` to gate *relatively* ("no
/// worse than the recorded CI lower bound shrunk by `max_drop`")
/// instead of against a static floor file.
pub fn baseline_json(summary: &BenchSummary, quick: bool) -> Json {
    let entries = summary
        .engine_baselines
        .iter()
        .map(|b| {
            Json::obj()
                .field("scenario", b.scenario.as_str())
                .field("scheduler", b.scheduler)
                .field("events_per_sec", b.events_per_sec)
                .field("events_per_sec_ci_lo", b.ci_lo)
                .field("events_per_sec_ci_hi", b.ci_hi)
                .field("fused_speedup", b.fused_speedup)
        })
        .collect();
    Json::obj()
        .field("baseline", "simnet-engine")
        .field("quick", quick)
        .field("bootstrap_resamples", BASELINE_RESAMPLES)
        .field("defaults", Json::obj().field("max_drop", crate::baseline::DEFAULT_MAX_DROP))
        .field("engine", Json::Arr(entries))
}

/// Runs the micro-benchmark and returns the `BENCH_simnet.json` value.
pub fn run() -> Json {
    run_with_summary(&BenchOptions::default()).0
}

// ---------------------------------------------------------------------
// The CI floor check.
// ---------------------------------------------------------------------

/// Fusion must never cost throughput. The gate tolerates 15% of
/// measurement noise because pipelines with nothing to fuse (batch-gpu
/// is a single stage, so no zero-latency hops exist) measure ~1.0 and
/// would flake on an exact `>= 1.0` bound — and on shared/virtualized
/// CI hosts the median-of-3 ratio of two short runs still jitters by
/// ~10%. The gate exists to catch fusion *pessimizations* (a real bug
/// lands well below 0.85), not to certify a precise ratio.
pub(crate) const FUSED_SPEEDUP_MIN: f64 = 0.85;

/// Checks a bench summary against a static floor file (plain
/// `key value` lines; `#` comments). Returns the failures, empty when
/// the gate passes. CI now gates on the relative baseline
/// (`--baseline reports/baseline.json`, see [`crate::baseline`]);
/// `--check-floor` remains for ad-hoc absolute gating. Gates:
///
/// - `identical_results` must be true;
/// - `forward-2stage_wheel_events_per_sec` must be no more than 30%
///   below the recorded floor;
/// - every engine scenario's `fused_speedup` must clear
///   [`FUSED_SPEEDUP_MIN`] (fusion may be a no-op, never a slowdown).
pub fn check_floor(summary: &BenchSummary, floor_text: &str) -> Vec<String> {
    let mut failures = Vec::new();
    if !summary.identical_results {
        failures.push("identical_results is false: a scheduler or schedule changed results".into());
    }
    for b in &summary.engine_baselines {
        if b.fused_speedup < FUSED_SPEEDUP_MIN {
            failures.push(format!(
                "{} ({}): fused_speedup {:.3} below the {FUSED_SPEEDUP_MIN} floor — \
                 pipeline fusion made the engine slower",
                b.scenario, b.scheduler, b.fused_speedup
            ));
        }
    }
    let mut floor_events: Option<f64> = None;
    for line in floor_text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        if let (Some(key), Some(value)) = (parts.next(), parts.next()) {
            if key == "forward-2stage_wheel_events_per_sec" {
                floor_events = value.parse().ok();
            }
        }
    }
    match floor_events {
        Some(floor) => {
            let measured = summary.forward_wheel_events_per_sec;
            if measured < floor * 0.7 {
                failures.push(format!(
                    "forward-2stage wheel throughput regressed >30%: {measured:.0} events/s \
                     vs floor {floor:.0}"
                ));
            }
        }
        None => {
            failures.push("floor file lacks forward-2stage_wheel_events_per_sec".into());
        }
    }
    failures
}

/// Checks the observability overhead against a checked-in ceiling file
/// (same `key value` format as the bench floor). Gates:
///
/// - `identical_results` must be true (the zero-cost and
///   observed-numbers identity checks fold into it);
/// - `obs_overhead_ratio` must not exceed `obs_overhead_max_ratio`
///   from the ceiling file (the <5% budget ships as `1.05`).
pub fn check_obs_overhead(summary: &BenchSummary, ceiling_text: &str) -> Vec<String> {
    let mut failures = Vec::new();
    if !summary.identical_results {
        failures.push("identical_results is false: observability changed simulated results".into());
    }
    let mut max_ratio: Option<f64> = None;
    for line in ceiling_text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        if let (Some(key), Some(value)) = (parts.next(), parts.next()) {
            if key == "obs_overhead_max_ratio" {
                max_ratio = value.parse().ok();
            }
        }
    }
    match max_ratio {
        Some(ceiling) => {
            if summary.obs_overhead_ratio > ceiling {
                failures.push(format!(
                    "span-profiler overhead {:.3}x exceeds the {:.3}x ceiling",
                    summary.obs_overhead_ratio, ceiling
                ));
            }
        }
        None => failures.push("ceiling file lacks obs_overhead_max_ratio".into()),
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_json_has_the_advertised_shape() {
        // One tiny engine run through the same plumbing (the full bench
        // is exercised by `xp bench` itself; keep the test fast).
        let out = engine_scenario(
            "smoke",
            SchedulerKind::Wheel,
            forward_pipeline,
            &WorkloadSpec::cbr(2e6, 200, 4, 1),
            2_000_000,
        );
        assert!(out.identical_to_unfused, "fused and unfused runs must agree bit-for-bit");
        let s = out.json.render();
        for key in [
            "scenario",
            "scheduler",
            "total_events",
            "peak_live_events",
            "memory_ratio",
            "wall_ms",
            "events_per_sec_ci_lo",
            "events_per_sec_ci_hi",
            "fused_speedup",
            "identical_to_unfused",
        ] {
            assert!(s.contains(key), "missing {key} in {s}");
        }
    }

    #[test]
    fn serial_and_pooled_harness_batches_are_identical() {
        let a = run_harness_batch(&Pool::with_workers(1));
        let b = run_harness_batch(&Pool::with_workers(4));
        assert_eq!(a, b);
    }

    #[test]
    fn scheduler_microbench_streams_are_identical_across_disciplines() {
        for dist in &DISTRIBUTIONS {
            let wheel = drive_scheduler(SchedulerKind::Wheel, dist, 64, 5_000);
            let heap = drive_scheduler(SchedulerKind::Heap, dist, 64, 5_000);
            assert_eq!(wheel, heap, "pop streams diverged on {}", dist.name);
            assert!(wheel.0 >= 5_000, "{}: drained only {} ops", dist.name, wheel.0);
        }
    }

    #[test]
    fn sweep_worker_counts_cover_serial_and_machine() {
        let counts = sweep_worker_counts();
        assert_eq!(counts.first(), Some(&1));
        assert!(counts.windows(2).all(|w| w[0] < w[1]), "not strictly increasing: {counts:?}");
        assert!(counts.contains(&Pool::new().workers()));
    }

    #[test]
    fn robustness_section_reports_identity_and_cis() {
        let mut all_identical = true;
        let s = robustness_section(2, &mut all_identical).render();
        assert!(all_identical, "faulted runs must be serial/parallel- and replay-identical");
        for key in [
            "severity",
            "replications",
            "gbps_ci_lo",
            "gbps_ci_hi",
            "bootstrap_resamples",
            "serial_parallel_identical",
            "replay_identical",
        ] {
            assert!(s.contains(key), "missing {key} in {s}");
        }
        assert!(s.contains("severe"), "{s}");
    }

    #[test]
    fn faulted_digests_replay_bit_for_bit() {
        assert_eq!(faulted_digest(301, 1.0), faulted_digest(301, 1.0));
        assert_ne!(faulted_digest(301, 0.0), faulted_digest(301, 1.0), "faults must bite");
    }

    fn summary(events: f64, identical: bool, obs_ratio: f64) -> BenchSummary {
        BenchSummary {
            forward_wheel_events_per_sec: events,
            identical_results: identical,
            obs_overhead_ratio: obs_ratio,
            engine_baselines: Vec::new(),
        }
    }

    fn baseline(scenario: &str, fused_speedup: f64) -> EngineBaseline {
        EngineBaseline {
            scenario: scenario.to_owned(),
            scheduler: "wheel",
            events_per_sec: 10e6,
            ci_lo: 9e6,
            ci_hi: 11e6,
            fused_speedup,
        }
    }

    #[test]
    fn floor_check_gates_on_fused_speedup() {
        let floor = "forward-2stage_wheel_events_per_sec 10000000\n";
        let mut good = summary(10e6, true, 1.0);
        good.engine_baselines = vec![baseline("forward-2stage", 1.8), baseline("batch-gpu", 0.99)];
        assert!(check_floor(&good, floor).is_empty(), "speedups above 0.85 must pass");

        let mut regressed = summary(10e6, true, 1.0);
        regressed.engine_baselines = vec![baseline("forward-2stage", 0.70)];
        let failures = check_floor(&regressed, floor);
        assert_eq!(failures.len(), 1, "fusion slowdown must fail: {failures:?}");
        assert!(failures[0].contains("fused_speedup"), "{failures:?}");
    }

    #[test]
    fn baseline_json_exports_per_scenario_cis() {
        let mut s = summary(10e6, true, 1.0);
        s.engine_baselines = vec![baseline("forward-2stage", 1.5)];
        let rendered = baseline_json(&s, true).render();
        for key in [
            "baseline",
            "bootstrap_resamples",
            "forward-2stage",
            "events_per_sec_ci_lo",
            "events_per_sec_ci_hi",
            "fused_speedup",
        ] {
            assert!(rendered.contains(key), "missing {key} in {rendered}");
        }
    }

    #[test]
    fn floor_check_gates_on_identity_and_regression() {
        let good = summary(10e6, true, 1.0);
        let floor = "# floor\nforward-2stage_wheel_events_per_sec 11000000\n";
        assert!(check_floor(&good, floor).is_empty(), "within 30% of floor must pass");

        let slow = summary(7e6, true, 1.0);
        assert_eq!(check_floor(&slow, floor).len(), 1, ">30% regression must fail");

        let broken = summary(12e6, false, 1.0);
        assert_eq!(check_floor(&broken, floor).len(), 1, "identity break must fail");

        assert_eq!(check_floor(&good, "# empty\n").len(), 1, "missing key must fail");
    }

    #[test]
    fn obs_overhead_check_gates_on_ceiling_and_identity() {
        let ceiling = "# observability overhead ceiling\nobs_overhead_max_ratio 1.05\n";
        assert!(check_obs_overhead(&summary(1e6, true, 1.02), ceiling).is_empty());
        assert_eq!(
            check_obs_overhead(&summary(1e6, true, 1.20), ceiling).len(),
            1,
            "ratio above the ceiling must fail"
        );
        assert_eq!(
            check_obs_overhead(&summary(1e6, false, 1.0), ceiling).len(),
            1,
            "identity break must fail"
        );
        assert_eq!(
            check_obs_overhead(&summary(1e6, true, 1.0), "# empty\n").len(),
            1,
            "missing key must fail"
        );
    }

    #[test]
    fn obs_section_proves_zero_cost_and_reports_shape() {
        let mut all_identical = true;
        let mut ratio = 0.0;
        let s = obs_section(true, &mut all_identical, &mut ratio).render();
        assert!(all_identical, "observed runs must not change simulated results");
        assert!(ratio > 0.0, "overhead ratio must be measured");
        for key in [
            "zero_cost_identical",
            "observed_numbers_identical",
            "overhead_ratio",
            "trace",
            "sched_counters",
            "spans",
            "telemetry",
        ] {
            assert!(s.contains(key), "missing {key} in {s}");
        }
    }
}
