//! `xp trace`: run one worked-example scenario fully observed and turn
//! the result into evidence — a Chrome `trace_event` file that opens in
//! `chrome://tracing` / Perfetto, and/or a top-N summary table.
//!
//! The exported file is a pure function of `(scenario, severity, seed)`:
//! timestamps are sim-time, the provenance stamp says
//! `scheduler-invariant` and hashes the scenario under its production
//! scheduler, and re-running under `--scheduler heap` must produce the
//! byte-identical file (checked by the observability test suite and the
//! CI trace-determinism stage).

use crate::scenarios::{
    baseline_host, faulted, perturbed_workload, smartnic_system, switch_system, RUN_NS, WARMUP_NS,
};
use apples_obs::chrome::chrome_trace;
use apples_obs::{ObsConfig, TraceDrop, TraceFault, TraceKind};
use apples_simnet::sched::SchedulerKind;
use apples_simnet::system::Deployment;

/// Offered load for traced runs, Gbps — the same operating point the
/// verdict experiments judge at.
const TRACE_GBPS: f64 = 120.0;

/// Knobs for one traced run.
#[derive(Debug, Clone)]
pub struct TraceOptions {
    /// Scenario id (see [`scenario_ids`]).
    pub scenario: String,
    /// Event scheduler to run under (the file must not depend on it).
    pub scheduler: SchedulerKind,
    /// Fault-ladder severity in [0, 1]; 0 runs clean.
    pub severity: f64,
    /// Workload seed.
    pub seed: u64,
    /// Trace ring bound: the file keeps the last `ring` events.
    pub ring: usize,
}

impl Default for TraceOptions {
    fn default() -> Self {
        TraceOptions {
            scenario: "smartnic".to_owned(),
            scheduler: SchedulerKind::Wheel,
            severity: 0.0,
            seed: 1,
            ring: apples_obs::observer::DEFAULT_TRACE_CAPACITY,
        }
    }
}

/// The traceable scenario ids — the worked-example contenders.
pub fn scenario_ids() -> [&'static str; 3] {
    ["base-2c", "smartnic", "switch-2c"]
}

fn build(scenario: &str) -> Option<Deployment> {
    match scenario {
        "base-2c" => Some(baseline_host(2)),
        "smartnic" => Some(smartnic_system()),
        "switch-2c" => Some(switch_system(2)),
        _ => None,
    }
}

/// One traced run's artifacts: the Chrome export and the summary table.
#[derive(Debug)]
pub struct TraceOutput {
    /// Chrome `trace_event` JSON, pretty-rendered (byte-stable).
    pub chrome_json: String,
    /// Human-readable top-N summary.
    pub summary: String,
}

/// Runs one scenario fully observed and renders both artifacts.
/// Returns `None` for an unknown scenario id.
pub fn run_trace(opts: &TraceOptions) -> Option<TraceOutput> {
    let wl = perturbed_workload(TRACE_GBPS, opts.seed, opts.severity);
    // Provenance comes from the scenario under its production scheduler,
    // then declares itself scheduler-invariant: the whole point of a
    // sim-time trace is that wheel and heap produce the same file.
    let reference = faulted(build(&opts.scenario)?, opts.severity);
    let mut prov = reference.provenance(&wl, RUN_NS, WARMUP_NS);
    prov.scheduler = "scheduler-invariant".to_owned();

    let d = faulted(build(&opts.scenario)?, opts.severity).with_scheduler(opts.scheduler);
    let cfg = ObsConfig {
        trace_capacity: opts.ring.max(1),
        telemetry: true,
        spans: true,
        timeseries: true,
    };
    let (m, obs) = d.run_observed(&wl, RUN_NS, WARMUP_NS, &cfg);
    let names: Vec<String> = m.stages.iter().map(|s| s.name.to_owned()).collect();

    let tracer = obs.tracer.as_ref()?;
    let chrome_json = chrome_trace(tracer, &names, &prov).render_pretty();

    // ---- summary ---------------------------------------------------
    let mut out = String::new();
    out.push_str(&format!(
        "trace summary: {} (severity {}, seed {}, {} Gbps offered)\n",
        opts.scenario, opts.severity, opts.seed, TRACE_GBPS
    ));
    out.push_str(&format!(
        "  ring: emitted={} retained={} overwritten={}\n",
        tracer.emitted(),
        tracer.len(),
        tracer.overwritten()
    ));
    if let Some(tel) = obs.telemetry.as_ref() {
        let name_of = |i: usize| names.get(i).cloned().unwrap_or_else(|| format!("stage{i}"));
        if let Some(i) = tel.busiest_stage() {
            out.push_str(&format!(
                "  busiest stage: {} ({} served)\n",
                name_of(i),
                tel.stages[i].served
            ));
        }
        if let Some(i) = tel.deepest_queue() {
            out.push_str(&format!(
                "  deepest queue: {} (peak depth {})\n",
                name_of(i),
                tel.stages[i].peak_depth
            ));
        }
        out.push_str(&fault_to_drop_gap(tracer));
        // Top-N stages by packets served.
        let mut order: Vec<usize> = (0..tel.stages.len()).collect();
        order.sort_by_key(|&i| (std::cmp::Reverse(tel.stages[i].served), i));
        out.push_str("  top stages by served:\n");
        out.push_str(&format!(
            "    {:<12} {:>10} {:>8} {:>10} {:>12} {:>12}\n",
            "stage", "served", "drops", "peak_depth", "wait_p99_ns", "svc_p99_ns"
        ));
        for &i in order.iter().take(5) {
            let st = &tel.stages[i];
            out.push_str(&format!(
                "    {:<12} {:>10} {:>8} {:>10} {:>12} {:>12}\n",
                name_of(i),
                st.served,
                st.drops(),
                st.peak_depth,
                st.wait_ns.quantile(0.99),
                st.service_ns.quantile(0.99)
            ));
        }
    }
    Some(TraceOutput { chrome_json, summary: out })
}

/// The retained-window gap between the first fault action and the first
/// fault-attributed loss — how long the system absorbed the fault before
/// packets started dying.
fn fault_to_drop_gap(tracer: &apples_obs::Tracer) -> String {
    let mut first_fault: Option<u64> = None;
    let mut first_loss: Option<u64> = None;
    for ev in tracer.events() {
        match ev.kind {
            TraceKind::Fault { fault: TraceFault::InjectedDrop, .. } => {
                first_fault.get_or_insert(ev.t_ns);
                first_loss.get_or_insert(ev.t_ns);
            }
            TraceKind::Fault { .. } => {
                first_fault.get_or_insert(ev.t_ns);
            }
            TraceKind::Drop { reason: TraceDrop::Fault, .. } if first_fault.is_some() => {
                first_loss.get_or_insert(ev.t_ns);
            }
            _ => {}
        }
        if first_loss.is_some() {
            break;
        }
    }
    match (first_fault, first_loss) {
        (Some(f), Some(l)) => {
            format!("  first fault -> first fault-loss gap: {} ns\n", l.saturating_sub(f))
        }
        (Some(_), None) => "  faults traced, no fault-attributed loss in window\n".to_owned(),
        (None, _) => "  no faults traced (clean run)\n".to_owned(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_scenario_is_none() {
        let opts = TraceOptions { scenario: "nope".to_owned(), ..TraceOptions::default() };
        assert!(run_trace(&opts).is_none());
    }

    #[test]
    fn trace_file_is_scheduler_invariant() {
        let wheel = TraceOptions {
            scenario: "base-2c".to_owned(),
            severity: 0.5,
            ..TraceOptions::default()
        };
        let heap = TraceOptions { scheduler: SchedulerKind::Heap, ..wheel.clone() };
        let a = run_trace(&wheel).expect("known scenario");
        let b = run_trace(&heap).expect("known scenario");
        assert_eq!(a.chrome_json, b.chrome_json, "wheel and heap traces must be byte-identical");
        assert_eq!(a.summary, b.summary);
        assert!(a.chrome_json.contains("\"scheduler-invariant\""), "{}", a.summary);
    }

    #[test]
    fn faulted_summary_names_the_fault_gap_and_top_table() {
        let opts = TraceOptions {
            scenario: "smartnic".to_owned(),
            severity: 1.0,
            ..TraceOptions::default()
        };
        let out = run_trace(&opts).expect("known scenario");
        assert!(out.summary.contains("busiest stage"), "{}", out.summary);
        assert!(out.summary.contains("deepest queue"), "{}", out.summary);
        assert!(out.summary.contains("first fault"), "{}", out.summary);
        assert!(out.summary.contains("top stages by served"), "{}", out.summary);
    }

    #[test]
    fn clean_summary_says_clean() {
        let opts = TraceOptions { scenario: "base-2c".to_owned(), ..TraceOptions::default() };
        let out = run_trace(&opts).expect("known scenario");
        assert!(out.summary.contains("no faults traced"), "{}", out.summary);
    }
}
