//! Store-backed `xp all`: plan the experiment DAG against the
//! content-addressed store, re-run only what changed, serve the rest
//! byte-identically from cache.
//!
//! The DAG per suite invocation (ROADMAP item 2):
//!
//! ```text
//! scenario/calibration ──┬─> run/<id> ──> report/<id> ──> figure/<id>:<table>
//! fault/<id>:<rung> ... ─┘        (fault nodes only for fault experiments)
//! ```
//!
//! One shared scenario node carries the calibration digest plus the
//! toolchain/rev environment; fault experiments additionally get one
//! node per severity-ladder rung (sweep expansion — a targeted
//! `APPLES_SEVERITY_OVERRIDE` moves exactly one rung of one experiment,
//! and therefore exactly that experiment's subtree). The run node's own
//! key is precisely the provenance stamp the report carries, plus the
//! digest of the experiment's golden fixture so `GOLDEN_REGEN=1` can
//! never leave a pre-regen report serveable. Cached stdout is built
//! from stored payloads with the same formatting as fresh renders, so a
//! warm run is byte-identical to a cold one — the CI `== store ==`
//! stage `cmp`s them.

use crate::experiments::{calibration_digest, experiment_provenance, run, uses_faults, ALL_IDS};
use crate::pool::Pool;
use crate::scenarios::severity_ladder;
use crate::wallclock::WallClock;
use apples_core::digest::{fnv1a_hex, CacheKey};
use apples_obs::Provenance;
use apples_simnet::fault::FaultSpec;
use apples_store::{plan, Dag, GcReport, Lookup, NodeId, Store};
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

/// Options for one store-backed suite invocation.
#[derive(Debug, Clone)]
pub struct XpAllOptions {
    /// Experiment ids to run, in request (output) order.
    pub ids: Vec<String>,
    /// Plan every node as a miss: re-run everything, refresh the store.
    pub no_cache: bool,
    /// Store root directory.
    pub store_root: PathBuf,
    /// Directory holding `tests/golden/<id>.md` fixtures (their digest
    /// is part of each run key).
    pub golden_dir: PathBuf,
    /// Write each figure CSV under this directory.
    pub csv_dir: Option<PathBuf>,
    /// Write each markdown report under this directory.
    pub md_dir: Option<PathBuf>,
    /// Worker count for the execution pool (`None` = one per core).
    pub threads: Option<usize>,
}

impl XpAllOptions {
    /// Defaults for a set of ids: default store root, repo-layout
    /// golden dir, no artifact dirs.
    pub fn for_ids(ids: Vec<String>) -> XpAllOptions {
        XpAllOptions {
            ids,
            no_cache: false,
            store_root: Store::default_root(),
            golden_dir: PathBuf::from("tests").join("golden"),
            csv_dir: None,
            md_dir: None,
            threads: None,
        }
    }
}

/// Cache statistics for one invocation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Total DAG nodes planned.
    pub nodes: usize,
    /// Nodes served from cache.
    pub hit: usize,
    /// Nodes whose key changed (diff available in the explain text).
    pub stale: usize,
    /// Nodes with no cached entry.
    pub miss: usize,
    /// Nodes whose entry failed footer validation.
    pub torn: usize,
    /// Experiment ids that actually re-ran, in request order.
    pub executed: Vec<String>,
}

/// Result of a store-backed suite invocation.
#[derive(Debug, Clone)]
pub struct XpAllOutcome {
    /// Exactly what the non-store `xp all` would print to stdout
    /// (reports in request order plus `wrote <path>` lines).
    pub stdout: String,
    /// The `--explain` text: one line per node plus a summary line.
    pub explain: String,
    /// Hit/miss accounting.
    pub stats: StoreStats,
}

/// Table names each experiment publishes, used to build figure nodes
/// *before* running anything. Checked against the actual reports at
/// execution time, so catalog rot is a hard error, not a silent
/// cache-shape drift.
pub fn tables_for(id: &str) -> &'static [&'static str] {
    match id {
        "table1" => &["table1"],
        "fig1a" => &["fig1a"],
        "fig1b" => &["fig1b"],
        "fig2" => &["fig2-grid"],
        "fig3" => &["fig3-trajectory"],
        "ex42" => &["ex42-points"],
        "ex421" => &["ex421-points"],
        "ex43" => &["ex43-latency"],
        "crossover" => &["crossover-sweep"],
        "ips" => &["ips-points"],
        "multimetric" => &["multimetric-axes"],
        "efficiency" => &["efficiency-ranking"],
        "rfc2544" => &["rfc2544-sweep"],
        "multihost" => &["multihost-curve"],
        "batching" => &["batching-sweep"],
        "sensitivity" => &["sensitivity-sweep"],
        "telemetry" => &["stage-telemetry"],
        "ablation-scaling" => &["scaling-generosity"],
        "ablation-jfi" => &["jfi-vs-cores"],
        "ablation-rss" => &["rss-ablation"],
        "ablation-noise" => &["noise-samples"],
        "robustness-frontier" => &["frontier-vs-severity"],
        "robustness-verdict" => &["verdict-vs-severity"],
        "robustness-crossover" => &["crossover-vs-faults"],
        // ex41, checklist, ablation-coverage publish prose only.
        _ => &[],
    }
}

/// The store-facing nodes of one experiment id.
#[derive(Debug, Clone)]
struct IdNodes {
    id: String,
    faults: Vec<NodeId>,
    run: NodeId,
    report: NodeId,
    /// `(table name, node)` pairs, in report order.
    figures: Vec<(String, NodeId)>,
}

impl IdNodes {
    fn all(&self) -> Vec<NodeId> {
        let mut out = self.faults.clone();
        out.push(self.run);
        out.push(self.report);
        out.extend(self.figures.iter().map(|(_, n)| *n));
        out
    }
}

/// Digest of the experiment's golden fixture (`absent` when the file
/// does not exist): regenerating a fixture re-keys the whole subtree.
fn golden_component(golden_dir: &Path, id: &str) -> String {
    match std::fs::read(golden_dir.join(format!("{id}.md"))) {
        Ok(bytes) => fnv1a_hex(&bytes),
        Err(_) => "absent".to_owned(),
    }
}

/// Builds the suite DAG for `ids`. Shared upstream nodes (calibration,
/// and any identically-keyed sweep points) dedup via [`Dag::add`].
fn build_dag(ids: &[String], golden_dir: &Path) -> Result<(Dag, Vec<IdNodes>), String> {
    let mut dag = Dag::new();
    // Environment fields come through the same sanctioned path the
    // provenance stamp uses.
    let env = Provenance::new(0, "env-probe", "none", "none");
    let scenario = dag.add(
        "scenario",
        "calibration",
        CacheKey::new()
            .with("calibration", calibration_digest())
            .with("toolchain", env.toolchain.as_str())
            .with("rev", env.git_rev.as_str()),
        &[],
    )?;
    let mut per_id = Vec::with_capacity(ids.len());
    for id in ids {
        let mut faults = Vec::new();
        if uses_faults(id) {
            let points: Vec<(String, CacheKey)> = severity_ladder(id)
                .into_iter()
                .map(|(rung, s)| {
                    let spec = if s <= 0.0 {
                        "none".to_owned()
                    } else {
                        FaultSpec::at_severity(s).digest()
                    };
                    (rung, CacheKey::new().with("severity", format!("{s:?}")).with("spec", spec))
                })
                .collect();
            faults = dag.sweep("fault", id, &points, &[])?;
        }
        let mut run_parents = vec![scenario];
        run_parents.extend(faults.iter().copied());
        let run_key =
            experiment_provenance(id).cache_key().with("golden", golden_component(golden_dir, id));
        let run = dag.add("run", id.clone(), run_key, &run_parents)?;
        let report =
            dag.add("report", id.clone(), CacheKey::new().with("format", "md1"), &[run])?;
        let figures = tables_for(id)
            .iter()
            .map(|&table| {
                dag.add(
                    "figure",
                    format!("{id}:{table}"),
                    CacheKey::new().with("table", table).with("format", "csv1"),
                    &[report],
                )
                .map(|n| (table.to_owned(), n))
            })
            .collect::<Result<Vec<_>, _>>()?;
        per_id.push(IdNodes { id: id.clone(), faults, run, report, figures });
    }
    Ok((dag, per_id))
}

/// Runs the suite through the store. Returns the stdout/explain text
/// and stats; the caller decides where to print them.
pub fn run_all(opts: &XpAllOptions) -> Result<XpAllOutcome, String> {
    let clock = WallClock::start();
    let unknown: Vec<&String> =
        opts.ids.iter().filter(|id| !ALL_IDS.contains(&id.as_str())).collect();
    if let Some(first) = unknown.first() {
        return Err(format!("unknown experiment '{first}' (try --list)"));
    }

    let store = Store::open(&opts.store_root);
    let (dag, per_id) = build_dag(&opts.ids, &opts.golden_dir)?;
    let resolved = plan(&dag, &store, opts.no_cache);

    // An experiment is dirty when any node it owns is not a clean hit.
    let dirty: Vec<String> = per_id
        .iter()
        .filter(|nodes| nodes.all().iter().any(|n| resolved.nodes[n.0].decision != Lookup::Hit))
        .map(|nodes| nodes.id.clone())
        .collect();

    // Re-run dirty experiments on the pool; results come back in order.
    let pool = opts.threads.map_or_else(Pool::new, Pool::with_workers);
    let fresh = pool.map(dirty.clone(), |id| {
        let report = run(&id);
        (id, report)
    });
    let mut fresh_by_id = Vec::new();
    for (id, report) in fresh {
        let report = report.ok_or_else(|| format!("experiment {id} vanished mid-run"))?;
        let actual: Vec<&str> = report.tables.iter().map(|(n, _)| n.as_str()).collect();
        if actual != tables_for(&id) {
            return Err(format!(
                "table catalog drift for {id}: report publishes {actual:?} but the store \
                 DAG was built for {:?} — update xpall::tables_for",
                tables_for(&id)
            ));
        }
        fresh_by_id.push((id, report));
    }

    // Publish everything a dirty experiment produced, plus any non-hit
    // shared scenario/fault markers (their payload is their own key —
    // they exist to give the DAG addressable upstream structure).
    let effective: Vec<CacheKey> = resolved.nodes.iter().map(|n| n.effective.clone()).collect();
    let publish = |node: NodeId, payload: &[u8]| -> Result<(), String> {
        let n = dag.node(node);
        store
            .publish(&n.kind, &n.name, &effective[node.0], payload)
            .map(|_| ())
            .map_err(|e| format!("cannot publish {}: {e}", n.label()))
    };
    for planned in &resolved.nodes {
        let n = dag.node(NodeId(planned.index));
        if planned.decision != Lookup::Hit && (n.kind == "scenario" || n.kind == "fault") {
            publish(NodeId(planned.index), format!("{}\n", n.own.canonical()).as_bytes())?;
        }
    }
    for (id, report) in &fresh_by_id {
        let nodes =
            per_id.iter().find(|n| &n.id == id).ok_or_else(|| format!("no DAG nodes for {id}"))?;
        publish(nodes.run, report.render().as_bytes())?;
        publish(nodes.report, report.render_markdown().as_bytes())?;
        for ((_, csv), (_, node)) in report.tables.iter().zip(&nodes.figures) {
            publish(*node, csv.to_string().as_bytes())?;
        }
    }

    // Assemble stdout in request order, byte-identical whether a piece
    // came from a fresh render or the cache.
    let cached_payload = |node: NodeId| -> Result<String, String> {
        let planned = &resolved.nodes[node.0];
        let bytes = planned
            .payload
            .as_ref()
            .ok_or_else(|| format!("no cached payload for {}", dag.node(node).label()))?;
        String::from_utf8(bytes.clone())
            .map_err(|_| format!("cached {} is not UTF-8", dag.node(node).label()))
    };
    for dir in [&opts.csv_dir, &opts.md_dir].into_iter().flatten() {
        std::fs::create_dir_all(dir)
            .map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
    }
    let mut stdout = String::new();
    for nodes in &per_id {
        let fresh_report = fresh_by_id.iter().find(|(id, _)| id == &nodes.id).map(|(_, r)| r);
        let run_text = match fresh_report {
            Some(report) => report.render(),
            None => cached_payload(nodes.run)?,
        };
        stdout.push_str(&run_text);
        stdout.push('\n');
        if let Some(dir) = &opts.csv_dir {
            for (table, node) in &nodes.figures {
                let csv_text = match fresh_report {
                    Some(report) => report
                        .tables
                        .iter()
                        .find(|(name, _)| name == table)
                        .map(|(_, csv)| csv.to_string())
                        .ok_or_else(|| format!("{}: table {table} missing", nodes.id))?,
                    None => cached_payload(*node)?,
                };
                let path = dir.join(format!("{table}.csv"));
                std::fs::write(&path, csv_text)
                    .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
                stdout.push_str(&format!("wrote {}\n", path.display()));
            }
        }
        if let Some(dir) = &opts.md_dir {
            let md_text = match fresh_report {
                Some(report) => report.render_markdown(),
                None => cached_payload(nodes.report)?,
            };
            let path = dir.join(format!("{}.md", nodes.id));
            std::fs::write(&path, md_text)
                .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
            stdout.push_str(&format!("wrote {}\n", path.display()));
        }
    }

    let stats = StoreStats {
        nodes: resolved.nodes.len(),
        hit: resolved.count("hit"),
        stale: resolved.count("stale"),
        miss: resolved.count("miss"),
        torn: resolved.count("torn"),
        executed: dirty,
    };
    let explain = format!(
        "{}store[{}]: {} hit, {} stale, {} miss, {} torn of {} nodes; re-ran {}/{} \
         experiments in {} ms\n",
        resolved.render_explain(&dag),
        store.root().display(),
        stats.hit,
        stats.stale,
        stats.miss,
        stats.torn,
        stats.nodes,
        stats.executed.len(),
        per_id.len(),
        clock.elapsed_ms() as u64,
    );
    Ok(XpAllOutcome { stdout, explain, stats })
}

/// `xp gc`: rebuild the DAG over every experiment id and remove store
/// entries no current key can reach (plus abandoned tmp files).
pub fn run_gc(store_root: &Path, golden_dir: &Path) -> Result<GcReport, String> {
    let ids: Vec<String> = ALL_IDS.iter().map(|&s| s.to_owned()).collect();
    let (dag, _) = build_dag(&ids, golden_dir)?;
    let effective = dag.effective_keys();
    let expected: BTreeSet<String> = dag.entry_names(&effective).into_iter().collect();
    Store::open(store_root).gc(&expected).map_err(|e| format!("gc failed: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_matches_what_every_experiment_actually_publishes() {
        for id in ALL_IDS {
            let report = run(id).expect("known id");
            let actual: Vec<&str> = report.tables.iter().map(|(n, _)| n.as_str()).collect();
            assert_eq!(actual, tables_for(id), "tables_for({id}) is stale");
        }
    }

    #[test]
    fn dag_shares_the_scenario_node_and_expands_fault_sweeps() {
        let ids: Vec<String> = ALL_IDS.iter().map(|&s| s.to_owned()).collect();
        let (dag, per_id) = build_dag(&ids, Path::new("tests/golden")).expect("builds");
        let fault_ids = ids.iter().filter(|id| uses_faults(id)).count();
        let rungs = severity_ladder("robustness-frontier").len();
        let figures: usize = ids.iter().map(|id| tables_for(id).len()).sum();
        // 1 scenario + per-experiment (run + report + figures) + fault
        // sweep nodes for the fault experiments.
        assert_eq!(dag.len(), 1 + ids.len() * 2 + figures + fault_ids * rungs, "node count");
        let scenario = dag.find("scenario", "calibration").expect("scenario node");
        for nodes in &per_id {
            assert_eq!(
                dag.node(nodes.run).parents.first(),
                Some(&scenario),
                "{}: run's first parent is the shared scenario",
                nodes.id
            );
        }
    }

    #[test]
    fn unknown_id_is_an_error() {
        let opts = XpAllOptions::for_ids(vec!["nope".to_owned()]);
        assert!(run_all(&opts).unwrap_err().contains("unknown experiment"));
    }
}
