//! Experiment output structure: human-readable lines plus CSV series.

use apples_core::report::Csv;
use apples_obs::Provenance;

/// One experiment's complete output.
#[derive(Debug)]
pub struct ExperimentReport {
    /// Stable experiment id (e.g. `fig3`).
    pub id: &'static str,
    /// Title matching the paper artifact.
    pub title: &'static str,
    /// What the paper reports/claims for this artifact.
    pub paper: Vec<String>,
    /// What we measured/derived.
    pub measured: Vec<String>,
    /// Machine-readable series, named.
    pub tables: Vec<(String, Csv)>,
    /// Replay stamp: seed, scheduler, fault digest, config digest,
    /// toolchain, git rev. Stamped by the experiment runner so every
    /// rendered artifact says what produced it.
    pub provenance: Option<Provenance>,
}

impl ExperimentReport {
    /// Creates an empty report shell.
    pub fn new(id: &'static str, title: &'static str) -> Self {
        ExperimentReport {
            id,
            title,
            paper: Vec::new(),
            measured: Vec::new(),
            tables: Vec::new(),
            provenance: None,
        }
    }

    /// Attaches the replay stamp rendered at the end of the report.
    pub fn set_provenance(&mut self, p: Provenance) -> &mut Self {
        self.provenance = Some(p);
        self
    }

    /// Adds a paper-side line.
    pub fn paper_line(&mut self, s: impl Into<String>) -> &mut Self {
        self.paper.push(s.into());
        self
    }

    /// Adds a measured-side line.
    pub fn measured_line(&mut self, s: impl Into<String>) -> &mut Self {
        self.measured.push(s.into());
        self
    }

    /// Attaches a named CSV table.
    pub fn table(&mut self, name: impl Into<String>, csv: Csv) -> &mut Self {
        self.tables.push((name.into(), csv));
        self
    }

    /// Renders the report as GitHub-flavored markdown (tables included).
    pub fn render_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("## `{}` — {}\n\n", self.id, self.title));
        if !self.paper.is_empty() {
            out.push_str("**Paper:**\n\n");
            for l in &self.paper {
                out.push_str(&format!("> {l}\n"));
            }
            out.push('\n');
        }
        if !self.measured.is_empty() {
            out.push_str("**Measured:**\n\n");
            for l in &self.measured {
                out.push_str(&format!("- {l}\n"));
            }
            out.push('\n');
        }
        for (name, csv) in &self.tables {
            out.push_str(&format!("### {name}\n\n"));
            let text = csv.to_string();
            let mut lines = text.lines();
            if let Some(header) = lines.next() {
                let cols = header.split(',').count();
                out.push_str(&format!("| {} |\n", header.replace(',', " | ")));
                out.push_str(&format!("|{}\n", "---|".repeat(cols)));
                for row in lines {
                    out.push_str(&format!("| {} |\n", row.replace(',', " | ")));
                }
            }
            out.push('\n');
        }
        if let Some(p) = &self.provenance {
            out.push_str(&format!("**Provenance:** `{}`\n", p.render_compact()));
        }
        out
    }

    /// Renders the report as plain text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("=== [{}] {} ===\n", self.id, self.title));
        if !self.paper.is_empty() {
            out.push_str("paper:\n");
            for l in &self.paper {
                out.push_str(&format!("  {l}\n"));
            }
        }
        if !self.measured.is_empty() {
            out.push_str("measured:\n");
            for l in &self.measured {
                out.push_str(&format!("  {l}\n"));
            }
        }
        for (name, csv) in &self.tables {
            out.push_str(&format!("--- {name} ---\n{csv}"));
        }
        if let Some(p) = &self.provenance {
            out.push_str(&format!("provenance: {}\n", p.render_compact()));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_render_produces_tables() {
        let mut r = ExperimentReport::new("figY", "Markdown check");
        r.paper_line("claims");
        r.measured_line("got");
        let mut csv = Csv::new(["a", "b"]);
        csv.row_f64([1.0, 2.0]);
        r.table("series", csv);
        let md = r.render_markdown();
        assert!(md.contains("## `figY`"), "{md}");
        assert!(md.contains("| a | b |"), "{md}");
        assert!(md.contains("|---|---|"), "{md}");
        assert!(md.contains("> claims"), "{md}");
        assert!(md.contains("- got"), "{md}");
    }

    #[test]
    fn provenance_renders_in_both_formats() {
        let mut r = ExperimentReport::new("figZ", "Provenance check");
        r.measured_line("ok");
        assert!(!r.render().contains("provenance:"), "unstamped report carries no stamp");
        r.set_provenance(Provenance::new(9, "wheel", "none", "cafe"));
        let text = r.render();
        assert!(text.contains("provenance: seed=9 scheduler=wheel"), "{text}");
        let md = r.render_markdown();
        assert!(md.contains("**Provenance:** `seed=9"), "{md}");
    }

    #[test]
    fn render_contains_all_sections() {
        let mut r = ExperimentReport::new("figX", "A test figure");
        r.paper_line("claims 2x");
        r.measured_line("got 1.9x");
        let mut csv = Csv::new(["a", "b"]);
        csv.row_f64([1.0, 2.0]);
        r.table("series", csv);
        let s = r.render();
        assert!(s.contains("[figX]"));
        assert!(s.contains("claims 2x"));
        assert!(s.contains("got 1.9x"));
        assert!(s.contains("--- series ---"));
        assert!(s.contains("a,b"));
    }
}
