//! `xp profile`: run one worked-example scenario with the diagnosis
//! observer set (span profiling + the sim-time metrics ring — the
//! leave-on configuration) and export a folded-stack profile in the
//! flamegraph "collapsed" format, one `frames... value` line per stack.
//!
//! Two stack roots are emitted:
//!
//! - `engine;...` — the span profiler's engine phases (wheel advance,
//!   dispatch with fault application nested under it), valued in
//!   estimated self wall microseconds. On sharded runs this is the
//!   merge of every shard's profiler.
//! - `shards;shard-N;...` — only when the run sharded: each shard's
//!   wall clock decomposed into compute / barrier-wait / merge lanes as
//!   recorded by the epoch-barrier loop.
//!
//! Any flamegraph renderer that eats `perf script | stackcollapse`
//! output renders the file; the summary table prints the same numbers
//! as fractions so the CLI is useful without one. The attached observer
//! must not change simulated results — the run's measurement is checked
//! byte-for-byte against an unobserved run of the same configuration,
//! and a divergence is reported in the summary (and exits nonzero via
//! the CLI).

use crate::scenarios::{faulted, perturbed_workload, to_gbps};
use apples_obs::{ObsConfig, Phase};
use apples_simnet::sched::SchedulerKind;
use apples_simnet::system::{Deployment, Measurement};

const RUN_NS: u64 = 20_000_000;
const WARMUP_NS: u64 = 2_000_000;
const PROFILE_GBPS: f64 = 12.0;

/// Options for one `xp profile` invocation.
#[derive(Debug, Clone)]
pub struct ProfileOptions {
    /// Scenario id (see [`profile_scenario_ids`]).
    pub scenario: String,
    /// Event-queue discipline for the profiled run.
    pub scheduler: SchedulerKind,
    /// Fault severity in `[0, 1]` (0 = fault-free).
    pub severity: f64,
    /// Workload seed.
    pub seed: u64,
    /// Shard count; counts > 1 add the per-shard lane stacks.
    pub shards: usize,
}

impl Default for ProfileOptions {
    fn default() -> Self {
        ProfileOptions {
            scenario: "smartnic".to_owned(),
            scheduler: SchedulerKind::Wheel,
            severity: 0.0,
            seed: 1,
            shards: 1,
        }
    }
}

/// Scenario ids `xp profile` accepts: the trace trio plus the two
/// declared-steer fan-outs the shard planner can split.
pub fn profile_scenario_ids() -> [&'static str; 5] {
    ["base-2c", "smartnic", "switch-2c", "cluster", "rss"]
}

fn build(scenario: &str) -> Option<Deployment> {
    use crate::scenarios::{baseline_host, firewall_chain, smartnic_system, switch_system};
    match scenario {
        "base-2c" => Some(baseline_host(2)),
        "smartnic" => Some(smartnic_system()),
        "switch-2c" => Some(switch_system(2)),
        "cluster" => Some(Deployment::replicated_cluster("cluster", 4, 2, 0.1, firewall_chain)),
        "rss" => Some(Deployment::cpu_host_rss("rss", 4, firewall_chain)),
        _ => None,
    }
}

fn digest(m: &Measurement) -> (u64, u64, u64, u64, u64, u64) {
    (
        m.throughput_bps.to_bits(),
        m.mean_latency_ns.to_bits(),
        m.p99_latency_ns.to_bits(),
        m.policy_drops,
        m.fault_drops,
        m.watts.to_bits(),
    )
}

/// One profiled run's artifacts.
#[derive(Debug)]
pub struct ProfileOutput {
    /// Folded-stack profile (`frames... value` lines, flamegraph
    /// collapsed format).
    pub folded: String,
    /// Human-readable summary table.
    pub summary: String,
    /// Whether the observed run's measurement matched the unobserved
    /// reference byte for byte.
    pub identical: bool,
}

/// Runs one scenario under the diagnosis observer set and renders the
/// folded profile plus summary. Returns `None` for an unknown scenario.
pub fn run_profile(opts: &ProfileOptions) -> Option<ProfileOutput> {
    let wl = perturbed_workload(PROFILE_GBPS, opts.seed, opts.severity);
    let reference = faulted(build(&opts.scenario)?, opts.severity)
        .with_scheduler(opts.scheduler)
        .run(&wl, RUN_NS, WARMUP_NS);
    let d = faulted(build(&opts.scenario)?, opts.severity)
        .with_scheduler(opts.scheduler)
        .with_shards(opts.shards);
    let (m, obs, diag) = d.run_diagnosed(&wl, RUN_NS, WARMUP_NS, &ObsConfig::diagnosis());
    let identical = digest(&m) == digest(&reference);

    // ---- folded stacks ---------------------------------------------
    let mut folded = obs.spans.as_ref().map_or_else(String::new, |spans| spans.to_folded("engine"));
    if let Some(diag) = diag.as_ref() {
        // Integer microseconds, floored at 1 so a lane that ran is
        // never invisible to a renderer.
        let us = |ns: u128| -> u64 { u64::try_from(ns / 1_000).unwrap_or(u64::MAX).max(1) };
        for lane in &diag.lanes {
            folded.push_str(&format!(
                "shards;shard-{};compute {}\n",
                lane.shard,
                us(lane.compute_ns)
            ));
            folded.push_str(&format!(
                "shards;shard-{};barrier-wait {}\n",
                lane.shard,
                us(lane.barrier_ns)
            ));
            folded.push_str(&format!("shards;shard-{};merge {}\n", lane.shard, us(lane.merge_ns)));
        }
    }

    // ---- summary ---------------------------------------------------
    let scheduler = match opts.scheduler {
        SchedulerKind::Wheel => "wheel",
        SchedulerKind::Heap => "heap",
    };
    let mut out = String::new();
    out.push_str(&format!(
        "profile: {} (scheduler {}, severity {}, seed {}, shards {})\n",
        opts.scenario, scheduler, opts.severity, opts.seed, opts.shards
    ));
    out.push_str(&format!(
        "  throughput: {:.3} Gbps offered-{PROFILE_GBPS}\n",
        to_gbps(m.throughput_bps)
    ));
    if let Some(spans) = obs.spans.as_ref() {
        out.push_str("  engine phases (est self wall):\n");
        for ph in Phase::ALL {
            let p = spans.phase(ph);
            out.push_str(&format!(
                "    {:<14} {:>10} spans {:>12.0} us\n",
                ph.label(),
                p.count,
                p.est_wall_ns() / 1e3
            ));
        }
    }
    match diag.as_ref() {
        Some(diag) => {
            let (compute, barrier, merge) = diag.fractions();
            out.push_str(&format!(
                "  shard lanes ({} shards, epoch {} ns): compute {:.1}% / barrier-wait {:.1}% / merge {:.1}%\n",
                diag.shards,
                diag.epoch_ns,
                compute * 100.0,
                barrier * 100.0,
                merge * 100.0
            ));
            out.push_str(&format!(
                "  load balance: jain {:.3}, predicted max speedup {:.2}x, {} hops exchanged\n",
                diag.jain_index(),
                diag.predicted_max_speedup(),
                diag.hops_exchanged()
            ));
        }
        None => out.push_str("  shard lanes: none (serial run)\n"),
    }
    if let Some(ts) = obs.timeseries.as_ref() {
        let (peak_idx, peak) = ts.peak_interval().unwrap_or((0, 0));
        out.push_str(&format!(
            "  timeseries: {} intervals of {:.3} ms, peak {} dispatches at interval {}\n",
            ts.len(),
            ts.interval_ns() as f64 / 1e6,
            peak,
            peak_idx
        ));
    }
    out.push_str(if identical {
        "  verdict: observed run byte-identical to unobserved reference\n"
    } else {
        "  verdict: DIVERGED — the observer changed simulated results\n"
    });
    Some(ProfileOutput { folded, summary: out, identical })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_wellformed(folded: &str) {
        assert!(!folded.is_empty(), "profile emitted no stacks");
        for line in folded.lines() {
            let (stack, value) = line.rsplit_once(' ').expect("line has a value");
            assert!(!stack.is_empty() && !stack.contains(' '), "bad stack: {line}");
            assert!(value.parse::<u64>().is_ok(), "bad value: {line}");
        }
    }

    #[test]
    fn unknown_scenario_is_none() {
        let opts = ProfileOptions { scenario: "nope".to_owned(), ..ProfileOptions::default() };
        assert!(run_profile(&opts).is_none());
    }

    #[test]
    fn serial_profile_is_wellformed_and_identical() {
        let out = run_profile(&ProfileOptions::default()).expect("known scenario");
        assert!(out.identical, "{}", out.summary);
        assert_wellformed(&out.folded);
        assert!(out.folded.contains("engine;dispatch"), "{}", out.folded);
        assert!(!out.folded.contains("shards;"), "serial run must not emit lanes");
        assert!(out.summary.contains("serial run"), "{}", out.summary);
    }

    #[test]
    fn sharded_profile_adds_one_lane_stack_per_shard() {
        let opts = ProfileOptions {
            scenario: "cluster".to_owned(),
            shards: 2,
            ..ProfileOptions::default()
        };
        let out = run_profile(&opts).expect("known scenario");
        assert!(out.identical, "{}", out.summary);
        assert_wellformed(&out.folded);
        for shard in 0..2 {
            for lane in ["compute", "barrier-wait", "merge"] {
                let frame = format!("shards;shard-{shard};{lane} ");
                assert!(out.folded.contains(&frame), "missing {frame} in:\n{}", out.folded);
            }
        }
        assert!(out.summary.contains("predicted max speedup"), "{}", out.summary);
    }

    #[test]
    fn faulted_profile_nests_fault_apply_under_dispatch() {
        let opts = ProfileOptions { severity: 1.0, ..ProfileOptions::default() };
        let out = run_profile(&opts).expect("known scenario");
        assert!(out.identical, "{}", out.summary);
        assert!(out.folded.contains("engine;dispatch;fault-apply "), "{}", out.folded);
    }
}
