//! Shared, calibrated scenario definitions used by every experiment.
//!
//! Calibration targets the *shape* of the paper's §4 worked examples
//! (see EXPERIMENTS.md for the paper-vs-measured numbers):
//!
//! - a single host core running the reference ACL firewall forwards
//!   ~10 Gbps of MTU traffic (§4.2 baseline);
//! - two contended cores reach ~1.8x of one (the paper's measured
//!   2-core point);
//! - the SmartNIC offload reaches ~2x the single-core baseline at a
//!   higher power draw (§4.2 proposed);
//! - the switch-fronted host reaches ~3x the all-cores baseline at
//!   ~2x its power (§4.2.1 proposed).

use apples_simnet::fault::FaultSpec;
use apples_simnet::nf::dpi::{Dpi, MatchPolicy};
use apples_simnet::nf::firewall::{synth_rules, Action, BucketedFirewall, Firewall, Rule};
use apples_simnet::nf::monitor::FlowMonitor;
use apples_simnet::nf::nat::Nat;
use apples_simnet::nf::{NetworkFunction, NfChain};
use apples_simnet::system::{Deployment, Measurement};
use apples_workload::{ArrivalProcess, PacketSizeDist, WorkloadSpec};

/// Reference rule-set size for the firewall experiments.
pub const FW_RULES: usize = 100;
/// Deny fraction used when synthesizing rules. Real ACLs are deny-heavy
/// (block lists with a terminal allow); this is also the regime where
/// port-bucketing the ruleset pays, which Figure 1a exploits.
pub const FW_DENY_FRACTION: f64 = 0.9;
/// Seed for the reference rule set.
pub const FW_SEED: u64 = 7;
/// Per-extra-core contention factor for multi-core hosts (gives the
/// paper's ~1.8x at 2 cores).
pub const CONTENTION_ALPHA: f64 = 0.1;
/// Simulation length for measurement runs, ns (20 ms).
pub const RUN_NS: u64 = 20_000_000;
/// Warmup excluded from measurements, ns (2 ms).
pub const WARMUP_NS: u64 = 2_000_000;

/// The reference ACL: the synthesized rule body, then a deny of TCP
/// port 80 near the end, then the terminal allow. Every deployment in a
/// comparison enforces this same policy, so delivered traffic means the
/// same thing across systems.
///
/// The port-80 deny sits deep in the list on purpose: a linear software
/// matcher pays the full scan to reach it, while a switch TCAM applies
/// it at line rate regardless of position — which is exactly why
/// offloading it to the switch frees host cycles (§4.2.1's shape).
pub fn reference_acl() -> Vec<Rule> {
    let mut rules = synth_rules(FW_RULES - 1, FW_DENY_FRACTION, FW_SEED);
    let terminal = rules.pop().expect("synth rules end with the terminal allow");
    rules.push(Rule {
        src: (0, 0),
        dst: (0, 0),
        dst_ports: (80, 80),
        proto: Some(6),
        action: Action::Deny,
    });
    rules.push(terminal);
    rules
}

/// The reference linear-scan ACL firewall chain.
pub fn firewall_chain() -> NfChain {
    NfChain::new(vec![Box::new(Firewall::new(reference_acl(), Action::Deny))])
}

/// The bucket-compiled variant of the same rules — the "software
/// optimization on identical hardware" for Figure 1a.
pub fn bucketed_firewall_chain() -> NfChain {
    NfChain::new(vec![Box::new(BucketedFirewall::new(reference_acl(), Action::Deny))])
}

/// The host-side stateful tail used by the offload scenarios: NAT plus
/// flow monitoring (work that stays on the host when the ACL moves to
/// an accelerator).
pub fn stateful_tail_chain() -> NfChain {
    NfChain::new(vec![
        Box::new(Nat::new(0xC0A8_0101, 65_536)) as Box<dyn NetworkFunction>,
        Box::new(FlowMonitor::new(4, 4096, 10_000_000)),
    ])
}

/// The full service chain (firewall + NAT + monitor) run entirely on the
/// host by baseline deployments.
pub fn full_chain() -> NfChain {
    NfChain::new(vec![
        Box::new(Firewall::new(reference_acl(), Action::Deny)) as Box<dyn NetworkFunction>,
        Box::new(Nat::new(0xC0A8_0101, 65_536)),
        Box::new(FlowMonitor::new(4, 4096, 10_000_000)),
    ])
}

/// A DPI (IPS) chain for payload-heavy scenarios.
pub fn ips_chain() -> NfChain {
    NfChain::new(vec![Box::new(Dpi::new(&Dpi::demo_signatures(), MatchPolicy::Block))])
}

/// The switch match-action chain: the *subset* of the reference ACL a
/// match-action pipeline holds natively — the TCP-port-80 deny — applied
/// at line rate in front of the host (§4.2.1 preprocessing). The host
/// still enforces the full policy on survivors, so the switch-fronted
/// system implements exactly the same policy as the baseline.
pub fn switch_acl_chain() -> NfChain {
    let rules = vec![
        Rule {
            src: (0, 0),
            dst: (0, 0),
            dst_ports: (80, 80),
            proto: Some(6),
            action: Action::Deny,
        },
        Rule::any(Action::Allow),
    ];
    NfChain::new(vec![Box::new(Firewall::new(rules, Action::Allow))])
}

/// The IPS signature set as owned needles for payload synthesis.
pub fn ips_needles() -> Vec<Vec<u8>> {
    Dpi::demo_signatures().iter().map(|s| s.to_vec()).collect()
}

/// Host-software IPS: DPI (block mode) on `cores` contended host cores.
pub fn host_ips(cores: u32) -> Deployment {
    Deployment::cpu_host_contended(format!("ips-host-{cores}c"), cores, CONTENTION_ALPHA, ips_chain)
        .with_payloads(0.01, ips_needles())
}

/// FPGA-NIC IPS (Pigasus-style): DPI on the FPGA pipeline at fixed
/// latency; the host only forwards survivors.
pub fn fpga_ips() -> Deployment {
    Deployment::fpga_offload("ips-fpga", ips_chain, 1, NfChain::empty)
        .with_payloads(0.01, ips_needles())
}

/// A payload-heavy workload for the IPS scenarios at `gbps` offered.
pub fn ips_workload(gbps: f64, seed: u64) -> WorkloadSpec {
    let mut wl = mtu_workload(gbps, seed);
    wl.flows = 64;
    wl
}

/// Baseline: the full chain on `cores` contended host cores.
pub fn baseline_host(cores: u32) -> Deployment {
    Deployment::cpu_host_contended(format!("fw-host-{cores}c"), cores, CONTENTION_ALPHA, full_chain)
}

/// Figure 1a's optimized software: bucketed firewall plus the same tail,
/// same single core.
pub fn optimized_host(cores: u32) -> Deployment {
    Deployment::cpu_host_contended(format!("fw-opt-host-{cores}c"), cores, CONTENTION_ALPHA, || {
        NfChain::new(vec![
            Box::new(BucketedFirewall::new(reference_acl(), Action::Deny))
                as Box<dyn NetworkFunction>,
            Box::new(Nat::new(0xC0A8_0101, 65_536)),
            Box::new(FlowMonitor::new(4, 4096, 10_000_000)),
        ])
    })
}

/// §4.2's proposed system: the ACL firewall on 4 SmartNIC cores, the
/// stateful tail on one host core.
pub fn smartnic_system() -> Deployment {
    Deployment::smartnic_offload("fw-smartnic", 4, firewall_chain, 1, stateful_tail_chain)
}

/// §4.2.1's proposed system: switch ACL preprocessing in front of the
/// all-cores host running the full chain.
pub fn switch_system(host_cores: u32) -> Deployment {
    Deployment::switch_frontend(
        format!("fw-switch-{host_cores}c"),
        switch_acl_chain,
        host_cores,
        full_chain,
    )
}

/// The reference MTU-sized workload at `gbps` offered load.
pub fn mtu_workload(gbps: f64, seed: u64) -> WorkloadSpec {
    let rate_pps = gbps * 1e9 / (1520.0 * 8.0); // 1500 B + wire overhead
    WorkloadSpec {
        sizes: PacketSizeDist::Fixed(1500),
        arrivals: ArrivalProcess::Poisson { rate_pps },
        flows: 256,
        zipf_s: 1.0,
        seed,
    }
}

/// A saturating workload: far above any scenario's capacity, so every
/// deployment reports its ceiling.
pub fn saturating_workload(seed: u64) -> WorkloadSpec {
    mtu_workload(120.0, seed)
}

/// The named fault-severity ladder used by the robustness experiments:
/// severity 0 is the clean baseline, 1 is the full
/// [`FaultSpec::at_severity`] fault mix.
pub const SEVERITY_LADDER: [(&str, f64); 4] =
    [("none", 0.0), ("light", 0.25), ("moderate", 0.5), ("severe", 1.0)];

/// The effective severity ladder for one experiment id: the shared
/// [`SEVERITY_LADDER`], with an optional targeted override from
/// `APPLES_SEVERITY_OVERRIDE="<id>:<rung>=<severity>"` applied when (and
/// only when) the id matches. The override exists for the experiment
/// store: flipping exactly one rung of exactly one experiment's fault
/// spec must invalidate that experiment's cached subtree and nothing
/// else, and the CI store stage drives that through this env knob.
pub fn severity_ladder(id: &str) -> Vec<(String, f64)> {
    let mut ladder: Vec<(String, f64)> =
        SEVERITY_LADDER.iter().map(|&(name, s)| (name.to_owned(), s)).collect();
    if let Some((ov_id, rung, severity)) =
        std::env::var("APPLES_SEVERITY_OVERRIDE").ok().as_deref().and_then(parse_severity_override)
    {
        if ov_id == id {
            for entry in &mut ladder {
                if entry.0 == rung {
                    entry.1 = severity;
                }
            }
        }
    }
    ladder
}

/// Parses `"<id>:<rung>=<severity>"`; `None` for anything malformed
/// (a bad override must read as "no override", never as a panic in the
/// middle of a suite run).
pub fn parse_severity_override(raw: &str) -> Option<(String, String, f64)> {
    let (target, severity) = raw.split_once('=')?;
    let (id, rung) = target.split_once(':')?;
    let severity: f64 = severity.trim().parse().ok()?;
    (!id.is_empty() && !rung.is_empty() && (0.0..=1.0).contains(&severity))
        .then(|| (id.to_owned(), rung.to_owned(), severity))
}

/// Attaches the severity-ladder fault spec to a deployment. Severity 0
/// returns the deployment untouched, so clean rows in a sweep are
/// byte-identical to runs that never heard of faults.
pub fn faulted(d: Deployment, severity: f64) -> Deployment {
    if severity <= 0.0 {
        d
    } else {
        d.with_faults(FaultSpec::at_severity(severity))
    }
}

/// The reference MTU workload with severity-scaled overload bursts:
/// every 5 ms the offered rate surges by `1 + 2·severity`× for 0.5 ms —
/// the arrival-side perturbation paired with the device-side fault spec.
pub fn perturbed_workload(gbps: f64, seed: u64, severity: f64) -> WorkloadSpec {
    let wl = mtu_workload(gbps, seed);
    if severity <= 0.0 {
        wl
    } else {
        wl.with_overload_bursts(1.0 + 2.0 * severity, 500_000, 5_000_000)
    }
}

/// Runs a deployment under the standard measurement window.
pub fn measure(d: &Deployment, wl: &WorkloadSpec) -> Measurement {
    d.run(wl, RUN_NS, WARMUP_NS)
}

/// Short-window variant for micro-benchmarks and determinism checks
/// (2 ms + 0.2 ms warmup).
pub fn measure_quick(d: &Deployment, wl: &WorkloadSpec) -> Measurement {
    d.run(wl, 2_000_000, 200_000)
}

/// Gbit/s helper for display.
pub fn to_gbps(bps: f64) -> f64 {
    bps / 1e9
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_core_baseline_lands_near_ten_gbps_processed() {
        // The core *processes* ~10 Gbps of offered traffic (the paper's
        // baseline anchor); delivered goodput is about half because the
        // reference policy denies the web-traffic share.
        let m = measure(&baseline_host(1), &saturating_workload(1));
        let g = to_gbps(m.throughput_bps);
        assert!(g > 2.5 && g < 8.0, "1-core baseline goodput {g} Gbps");
        // Denied traffic was still work done on the core.
        assert!(m.policy_drops > 0);
    }

    #[test]
    fn two_core_baseline_scales_sublinearly() {
        let one = measure(&baseline_host(1), &saturating_workload(1));
        let two = measure(&baseline_host(2), &saturating_workload(1));
        let gain = two.throughput_bps / one.throughput_bps;
        assert!(gain > 1.6 && gain < 1.95, "2-core gain {gain}");
        assert!(two.watts > one.watts);
    }

    #[test]
    fn smartnic_system_beats_single_core_at_higher_power() {
        let base = measure(&baseline_host(1), &saturating_workload(1));
        let nic = measure(&smartnic_system(), &saturating_workload(1));
        let gain = nic.throughput_bps / base.throughput_bps;
        assert!(gain > 1.5, "smartnic gain {gain}");
        assert!(nic.watts > base.watts, "nic {} W vs base {} W", nic.watts, base.watts);
    }

    #[test]
    fn switch_system_beats_all_cores_at_higher_power() {
        let base = measure(&baseline_host(8), &saturating_workload(1));
        let sw = measure(&switch_system(8), &saturating_workload(1));
        let gain = sw.throughput_bps / base.throughput_bps;
        assert!(gain > 1.3, "switch gain {gain}");
        assert!(sw.watts > base.watts);
    }

    #[test]
    fn severity_override_parses_and_scopes_to_one_id() {
        assert_eq!(
            parse_severity_override("robustness-verdict:moderate=0.55"),
            Some(("robustness-verdict".to_owned(), "moderate".to_owned(), 0.55))
        );
        for bad in ["", "no-equals", "norung=0.5", ":x=0.5", "a:=0.5", "a:b=nan", "a:b=1.5"] {
            assert_eq!(parse_severity_override(bad), None, "{bad:?} must not parse");
        }
        // Without the env knob, every id gets the shared ladder.
        if std::env::var("APPLES_SEVERITY_OVERRIDE").is_err() {
            let ladder = severity_ladder("robustness-frontier");
            assert_eq!(ladder.len(), SEVERITY_LADDER.len());
            for ((name, s), &(want_name, want_s)) in ladder.iter().zip(SEVERITY_LADDER.iter()) {
                assert_eq!(name, want_name);
                assert_eq!(*s, want_s);
            }
        }
    }

    #[test]
    fn optimized_host_is_faster_at_equal_cost() {
        let base = measure(&baseline_host(1), &saturating_workload(1));
        let opt = measure(&optimized_host(1), &saturating_workload(1));
        assert!(
            opt.throughput_bps > 1.1 * base.throughput_bps,
            "opt {} vs base {}",
            opt.throughput_bps,
            base.throughput_bps
        );
        // Same hardware, both saturated: costs within a watt or two.
        assert!((opt.watts - base.watts).abs() < 3.0, "{} vs {}", opt.watts, base.watts);
    }
}
