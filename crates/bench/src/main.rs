//! `xp`: the experiment runner.
//!
//! ```text
//! xp all                 # run every experiment
//! xp fig3 ex42           # run specific experiments
//! xp --csv-dir results all   # also write each CSV series to disk
//! xp --md-dir reports all    # also write markdown reports to disk
//! xp --threads 1 all     # force a serial schedule (results identical)
//! xp --list              # list experiment ids
//! xp bench               # micro-benchmark; writes BENCH_simnet.json
//! xp bench --out x.json  # ... to a chosen path
//! xp bench --quick       # ~10x shorter runs (CI perf-sanity)
//! xp bench --faults      # add the fault-injection robustness section
//! xp bench --faults --replications 9
//!                        # ... with 9 replications per severity
//! xp bench --check-floor reports/bench_floor.txt
//!                        # exit 1 on identity break or >30% regression
//! xp lint                # static-analysis pass over the workspace
//! xp lint --json         # ... with machine-readable output
//! xp lint --root DIR     # ... over another tree (fixtures, CI sandboxes)
//! ```

#![forbid(unsafe_code)]

use apples_bench::experiments::{run, ALL_IDS};
use apples_bench::Pool;
use std::path::PathBuf;

fn take_flag_value(args: &mut Vec<String>, flag: &str) -> Option<String> {
    let pos = args.iter().position(|a| a == flag)?;
    args.remove(pos);
    if pos < args.len() {
        Some(args.remove(pos))
    } else {
        eprintln!("{flag} requires an argument");
        std::process::exit(2);
    }
}

/// `xp lint`: run the static-analysis pass and exit 1 on any deny-tier
/// finding (the deterministic CI gate).
fn run_lint(mut args: Vec<String>) -> ! {
    let root =
        take_flag_value(&mut args, "--root").map_or_else(|| PathBuf::from("."), PathBuf::from);
    let json = match args.iter().position(|a| a == "--json") {
        Some(pos) => {
            args.remove(pos);
            true
        }
        None => false,
    };
    if !args.is_empty() {
        eprintln!("usage: xp lint [--json] [--root DIR]");
        std::process::exit(2);
    }
    match apples_lint::lint_workspace(&root) {
        Ok(report) => {
            if json {
                println!("{}", report.to_json().render_pretty());
            } else {
                print!("{}", report.render());
            }
            std::process::exit(if report.deny_count() > 0 { 1 } else { 0 });
        }
        Err(e) => {
            eprintln!("xp lint: cannot scan {}: {e}", root.display());
            std::process::exit(2);
        }
    }
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();

    if args.first().map(String::as_str) == Some("lint") {
        args.remove(0);
        run_lint(args);
    }

    if args.first().map(String::as_str) == Some("bench") {
        args.remove(0);
        let out = take_flag_value(&mut args, "--out")
            .map_or_else(|| PathBuf::from("BENCH_simnet.json"), PathBuf::from);
        let floor_path = take_flag_value(&mut args, "--check-floor").map(PathBuf::from);
        let replications = match take_flag_value(&mut args, "--replications") {
            Some(n) => match n.parse::<usize>() {
                Ok(n) if n > 0 => n,
                _ => {
                    eprintln!("--replications requires a positive integer, got '{n}'");
                    std::process::exit(2);
                }
            },
            None => 0,
        };
        let mut take_flag = |flag: &str| match args.iter().position(|a| a == flag) {
            Some(pos) => {
                args.remove(pos);
                true
            }
            None => false,
        };
        let quick = take_flag("--quick");
        let faults = take_flag("--faults");
        if !args.is_empty() {
            eprintln!(
                "usage: xp bench [--quick] [--faults] [--replications N] [--out FILE] \
                 [--check-floor FLOOR_FILE]"
            );
            std::process::exit(2);
        }
        let opts = apples_bench::microbench::BenchOptions { quick, faults, replications };
        let (json, summary) = apples_bench::microbench::run_with_summary(&opts);
        if let Err(e) = std::fs::write(&out, json.render_pretty()) {
            eprintln!("cannot write {}: {e}", out.display());
            std::process::exit(1);
        }
        println!("{}", json.render_pretty());
        println!("wrote {}", out.display());
        if let Some(floor_path) = floor_path {
            let floor_text = match std::fs::read_to_string(&floor_path) {
                Ok(text) => text,
                Err(e) => {
                    eprintln!("cannot read floor file {}: {e}", floor_path.display());
                    std::process::exit(1);
                }
            };
            let failures = apples_bench::microbench::check_floor(&summary, &floor_text);
            if failures.is_empty() {
                println!(
                    "perf-sanity OK: {:.2}M events/s on forward-2stage (wheel), all results identical",
                    summary.forward_wheel_events_per_sec / 1e6
                );
            } else {
                for f in &failures {
                    eprintln!("perf-sanity FAILED: {f}");
                }
                std::process::exit(1);
            }
        }
        return;
    }

    let csv_dir = take_flag_value(&mut args, "--csv-dir").map(PathBuf::from);
    let md_dir = take_flag_value(&mut args, "--md-dir").map(PathBuf::from);
    let pool = match take_flag_value(&mut args, "--threads") {
        Some(n) => match n.parse::<usize>() {
            Ok(n) if n > 0 => Pool::with_workers(n),
            _ => {
                eprintln!("--threads requires a positive integer, got '{n}'");
                std::process::exit(2);
            }
        },
        None => Pool::new(),
    };

    if args.iter().any(|a| a == "--list") {
        for id in ALL_IDS {
            println!("{id}");
        }
        return;
    }

    if args.is_empty() {
        eprintln!("usage: xp [--csv-dir DIR] [--md-dir DIR] [--threads N] [--list] <experiment-id>... | all | bench | lint");
        eprintln!("experiments: {}", ALL_IDS.join(", "));
        std::process::exit(2);
    }

    let ids: Vec<&str> = if args.iter().any(|a| a == "all") {
        ALL_IDS.to_vec()
    } else {
        args.iter().map(String::as_str).collect()
    };

    for dir in [&csv_dir, &md_dir].into_iter().flatten() {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create {}: {e}", dir.display());
            std::process::exit(1);
        }
    }

    // Experiments are independent and deterministic: run them on the
    // work-stealing pool, then print in request order (results come
    // back indexed, so output is identical at any worker count).
    let reports: Vec<(&str, Option<apples_bench::ExperimentReport>)> =
        pool.map(ids, |id| (id, run(id)));

    let mut failed = false;
    for (id, report) in reports {
        match report {
            Some(report) => {
                println!("{}", report.render());
                if let Some(dir) = &csv_dir {
                    for (name, csv) in &report.tables {
                        let path = dir.join(format!("{name}.csv"));
                        if let Err(e) = std::fs::write(&path, csv.to_string()) {
                            eprintln!("cannot write {}: {e}", path.display());
                            failed = true;
                        } else {
                            println!("wrote {}", path.display());
                        }
                    }
                }
                if let Some(dir) = &md_dir {
                    let path = dir.join(format!("{id}.md"));
                    if let Err(e) = std::fs::write(&path, report.render_markdown()) {
                        eprintln!("cannot write {}: {e}", path.display());
                        failed = true;
                    } else {
                        println!("wrote {}", path.display());
                    }
                }
            }
            None => {
                eprintln!("unknown experiment '{id}' (try --list)");
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}
