//! `xp`: the experiment runner.
//!
//! ```text
//! xp all                 # run every experiment
//! xp fig3 ex42           # run specific experiments
//! xp --csv-dir results all   # also write each CSV series to disk
//! xp --md-dir reports all    # also write markdown reports to disk
//! xp --list              # list experiment ids
//! ```

use apples_bench::experiments::{run, ALL_IDS};
use std::path::PathBuf;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut csv_dir: Option<PathBuf> = None;
    let mut md_dir: Option<PathBuf> = None;

    if let Some(pos) = args.iter().position(|a| a == "--csv-dir") {
        args.remove(pos);
        if pos < args.len() {
            csv_dir = Some(PathBuf::from(args.remove(pos)));
        } else {
            eprintln!("--csv-dir requires a directory argument");
            std::process::exit(2);
        }
    }

    if let Some(pos) = args.iter().position(|a| a == "--md-dir") {
        args.remove(pos);
        if pos < args.len() {
            md_dir = Some(PathBuf::from(args.remove(pos)));
        } else {
            eprintln!("--md-dir requires a directory argument");
            std::process::exit(2);
        }
    }

    if args.iter().any(|a| a == "--list") {
        for id in ALL_IDS {
            println!("{id}");
        }
        return;
    }

    if args.is_empty() {
        eprintln!("usage: xp [--csv-dir DIR] [--list] <experiment-id>... | all");
        eprintln!("experiments: {}", ALL_IDS.join(", "));
        std::process::exit(2);
    }

    let ids: Vec<&str> = if args.iter().any(|a| a == "all") {
        ALL_IDS.to_vec()
    } else {
        args.iter().map(String::as_str).collect()
    };

    for dir in [&csv_dir, &md_dir].into_iter().flatten() {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create {}: {e}", dir.display());
            std::process::exit(1);
        }
    }

    // Experiments are independent and deterministic: run them in
    // parallel (scoped threads), then print in request order.
    let reports: Vec<(&str, Option<apples_bench::ExperimentReport>)> =
        crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = ids
                .iter()
                .map(|id| {
                    let id: &str = id;
                    (id, scope.spawn(move |_| run(id)))
                })
                .collect();
            handles
                .into_iter()
                .map(|(id, h)| (id, h.join().expect("experiment thread panicked")))
                .collect()
        })
        .expect("scope");

    let mut failed = false;
    for (id, report) in reports {
        match report {
            Some(report) => {
                println!("{}", report.render());
                if let Some(dir) = &csv_dir {
                    for (name, csv) in &report.tables {
                        let path = dir.join(format!("{name}.csv"));
                        if let Err(e) = std::fs::write(&path, csv.to_string()) {
                            eprintln!("cannot write {}: {e}", path.display());
                            failed = true;
                        } else {
                            println!("wrote {}", path.display());
                        }
                    }
                }
                if let Some(dir) = &md_dir {
                    let path = dir.join(format!("{id}.md"));
                    if let Err(e) = std::fs::write(&path, report.render_markdown()) {
                        eprintln!("cannot write {}: {e}", path.display());
                        failed = true;
                    } else {
                        println!("wrote {}", path.display());
                    }
                }
            }
            None => {
                eprintln!("unknown experiment '{id}' (try --list)");
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}
