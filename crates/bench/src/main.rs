//! `xp`: the experiment runner.
//!
//! ```text
//! xp all                 # run every experiment (store-cached)
//! xp fig3 ex42           # run specific experiments
//! xp --csv-dir results all   # also write each CSV series to disk
//! xp --md-dir reports all    # also write markdown reports to disk
//! xp --threads 1 all     # force a serial schedule (results identical)
//! xp --no-cache all      # ignore the store, re-run everything
//! xp --explain all       # per-node hit/stale/miss/torn to stderr
//! xp --store-dir DIR all # store root (default results/store or
//!                        # $APPLES_STORE_DIR)
//! xp gc                  # drop store entries no current key reaches
//! xp --list              # list experiment ids
//! xp bench               # micro-benchmark; writes BENCH_simnet.json
//! xp bench --out x.json  # ... to a chosen path
//! xp bench --quick       # ~10x shorter runs (CI perf-sanity)
//! xp bench --faults      # add the fault-injection robustness section
//! xp bench --faults --replications 9
//!                        # ... with 9 replications per severity
//! xp bench --baseline reports/baseline.json --strict
//!                        # exit nonzero on identity break or a CI-vs-CI
//!                        # regression past the resolved max_drop
//! xp bench --check-floor floor.txt
//!                        # ad-hoc absolute gate (identity + static floor)
//! xp bench --check-obs reports/obs_overhead.txt
//!                        # exit 1 if observability overhead exceeds ceiling
//! xp bench --export-baseline reports/baseline.json
//!                        # dump per-scenario events/s + bootstrap CI
//! xp trace smartnic --out trace.json
//!                        # traced run -> Chrome trace_event file
//! xp trace smartnic --severity 0.5 --summarize
//!                        # ... plus the top-N summary table
//! xp trace base-2c --scheduler heap --out t.json
//!                        # byte-identical to the wheel file (invariant)
//! xp profile smartnic    # folded-stack (flamegraph) profile to stdout
//! xp profile cluster --shards 4 --out prof.folded
//!                        # ... with per-shard compute/barrier/merge lanes
//! xp lint                # static-analysis pass over the workspace
//! xp lint --json         # ... with machine-readable output
//! xp lint --root DIR     # ... over another tree (fixtures, CI sandboxes)
//! xp lint --baseline reports/lint_baseline.json
//!                        # grandfather known findings by fingerprint:
//!                        # legacy entries inform, new findings fail
//! xp sanitize smartnic   # order-sanitized + perturbed run; exit 1 if
//!                        # the bytes diverge from the plain run
//! xp sanitize base-2c --scheduler heap --severity 0.5 --perturb-seed 7
//! ```

#![forbid(unsafe_code)]

use apples_bench::experiments::ALL_IDS;
use apples_bench::xpall::{run_all, run_gc, XpAllOptions};
use apples_store::Store;
use std::path::PathBuf;

fn take_flag_value(args: &mut Vec<String>, flag: &str) -> Option<String> {
    let pos = args.iter().position(|a| a == flag)?;
    args.remove(pos);
    if pos < args.len() {
        Some(args.remove(pos))
    } else {
        eprintln!("{flag} requires an argument");
        std::process::exit(2);
    }
}

/// `xp lint`: run the static-analysis pass and exit 1 on any deny-tier
/// finding (the deterministic CI gate).
fn run_lint(mut args: Vec<String>) -> ! {
    let root =
        take_flag_value(&mut args, "--root").map_or_else(|| PathBuf::from("."), PathBuf::from);
    let baseline = take_flag_value(&mut args, "--baseline").map(PathBuf::from);
    let json = match args.iter().position(|a| a == "--json") {
        Some(pos) => {
            args.remove(pos);
            true
        }
        None => false,
    };
    if !args.is_empty() {
        eprintln!("usage: xp lint [--json] [--root DIR] [--baseline FILE]");
        std::process::exit(2);
    }
    match apples_lint::lint_workspace(&root) {
        Ok(mut report) => {
            if let Some(path) = baseline {
                match apples_lint::load_baseline(&path) {
                    Ok(fingerprints) => {
                        let unmatched = report.apply_baseline(&fingerprints);
                        for fp in unmatched {
                            eprintln!(
                                "xp lint: baseline entry {fp} matched no finding (fixed? \
                                 remove it from {})",
                                path.display()
                            );
                        }
                    }
                    Err(e) => {
                        eprintln!("xp lint: cannot read baseline {}: {e}", path.display());
                        std::process::exit(2);
                    }
                }
            }
            if json {
                println!("{}", report.to_json().render_pretty());
            } else {
                print!("{}", report.render());
            }
            std::process::exit(if report.deny_count() > 0 { 1 } else { 0 });
        }
        Err(e) => {
            eprintln!("xp lint: cannot scan {}: {e}", root.display());
            std::process::exit(2);
        }
    }
}

/// `xp trace`: run one scenario fully observed; write the Chrome trace
/// and/or print the summary table.
fn run_trace_cmd(mut args: Vec<String>) -> ! {
    use apples_bench::tracecmd::{run_trace, scenario_ids, TraceOptions};
    use apples_simnet::sched::SchedulerKind;

    let usage = || -> ! {
        eprintln!(
            "usage: xp trace <scenario> [--out FILE] [--summarize] [--scheduler wheel|heap] \
             [--severity S] [--seed N] [--ring EVENTS]"
        );
        eprintln!("scenarios: {}", scenario_ids().join(", "));
        std::process::exit(2);
    };
    let out = take_flag_value(&mut args, "--out").map(PathBuf::from);
    let scheduler = match take_flag_value(&mut args, "--scheduler").as_deref() {
        None | Some("wheel") => SchedulerKind::Wheel,
        Some("heap") => SchedulerKind::Heap,
        Some(other) => {
            eprintln!("--scheduler must be 'wheel' or 'heap', got '{other}'");
            std::process::exit(2);
        }
    };
    let severity = match take_flag_value(&mut args, "--severity") {
        Some(s) => match s.parse::<f64>() {
            Ok(v) if (0.0..=1.0).contains(&v) => v,
            _ => {
                eprintln!("--severity requires a number in [0, 1], got '{s}'");
                std::process::exit(2);
            }
        },
        None => 0.0,
    };
    let seed = match take_flag_value(&mut args, "--seed") {
        Some(s) => match s.parse::<u64>() {
            Ok(v) => v,
            Err(_) => {
                eprintln!("--seed requires an unsigned integer, got '{s}'");
                std::process::exit(2);
            }
        },
        None => 1,
    };
    let ring = match take_flag_value(&mut args, "--ring") {
        Some(s) => match s.parse::<usize>() {
            Ok(v) if v > 0 => v,
            _ => {
                eprintln!("--ring requires a positive integer, got '{s}'");
                std::process::exit(2);
            }
        },
        None => TraceOptions::default().ring,
    };
    let summarize = match args.iter().position(|a| a == "--summarize") {
        Some(pos) => {
            args.remove(pos);
            true
        }
        None => false,
    };
    if args.len() != 1 || args[0].starts_with("--") {
        usage();
    }
    let opts = TraceOptions { scenario: args.remove(0), scheduler, severity, seed, ring };
    let Some(result) = run_trace(&opts) else {
        eprintln!(
            "unknown scenario '{}' (choose from: {})",
            opts.scenario,
            scenario_ids().join(", ")
        );
        std::process::exit(2);
    };
    match (&out, summarize) {
        (None, false) => print!("{}", result.chrome_json),
        _ => {
            if let Some(path) = &out {
                if let Err(e) = std::fs::write(path, &result.chrome_json) {
                    eprintln!("cannot write {}: {e}", path.display());
                    std::process::exit(1);
                }
                println!("wrote {}", path.display());
            }
            if summarize {
                print!("{}", result.summary);
            }
        }
    }
    std::process::exit(0);
}

/// `xp profile`: run one scenario under the diagnosis observer set;
/// write the folded-stack flamegraph input and print the summary.
fn run_profile_cmd(mut args: Vec<String>) -> ! {
    use apples_bench::profilecmd::{profile_scenario_ids, run_profile, ProfileOptions};
    use apples_simnet::sched::SchedulerKind;

    let usage = || -> ! {
        eprintln!(
            "usage: xp profile <scenario> [--out FILE] [--shards N] [--scheduler wheel|heap] \
             [--severity S] [--seed N]"
        );
        eprintln!("scenarios: {}", profile_scenario_ids().join(", "));
        std::process::exit(2);
    };
    let out = take_flag_value(&mut args, "--out").map(PathBuf::from);
    let scheduler = match take_flag_value(&mut args, "--scheduler").as_deref() {
        None | Some("wheel") => SchedulerKind::Wheel,
        Some("heap") => SchedulerKind::Heap,
        Some(other) => {
            eprintln!("--scheduler must be 'wheel' or 'heap', got '{other}'");
            std::process::exit(2);
        }
    };
    let severity = match take_flag_value(&mut args, "--severity") {
        Some(s) => match s.parse::<f64>() {
            Ok(v) if (0.0..=1.0).contains(&v) => v,
            _ => {
                eprintln!("--severity requires a number in [0, 1], got '{s}'");
                std::process::exit(2);
            }
        },
        None => 0.0,
    };
    let seed = match take_flag_value(&mut args, "--seed") {
        Some(s) => match s.parse::<u64>() {
            Ok(v) => v,
            Err(_) => {
                eprintln!("--seed requires an unsigned integer, got '{s}'");
                std::process::exit(2);
            }
        },
        None => 1,
    };
    let shards = match take_flag_value(&mut args, "--shards") {
        Some(s) => match s.parse::<usize>() {
            Ok(v) if v >= 1 => v,
            _ => {
                eprintln!("--shards requires an integer >= 1, got '{s}'");
                std::process::exit(2);
            }
        },
        None => 1,
    };
    if args.len() != 1 || args[0].starts_with("--") {
        usage();
    }
    let opts = ProfileOptions { scenario: args.remove(0), scheduler, severity, seed, shards };
    let Some(result) = run_profile(&opts) else {
        eprintln!(
            "unknown scenario '{}' (choose from: {})",
            opts.scenario,
            profile_scenario_ids().join(", ")
        );
        std::process::exit(2);
    };
    match &out {
        None => print!("{}", result.folded),
        Some(path) => {
            if let Err(e) = std::fs::write(path, &result.folded) {
                eprintln!("cannot write {}: {e}", path.display());
                std::process::exit(1);
            }
            println!("wrote {}", path.display());
            print!("{}", result.summary);
        }
    }
    std::process::exit(if result.identical { 0 } else { 1 });
}

/// `xp sanitize`: run one scenario three ways (plain, checked,
/// perturbed) and gate on byte-identity of the measurements.
fn run_sanitize_cmd(mut args: Vec<String>) -> ! {
    use apples_bench::sanitizecmd::{run_sanitize, sanitize_scenario_ids, SanitizeOptions};
    use apples_simnet::sched::SchedulerKind;

    let usage = || -> ! {
        eprintln!(
            "usage: xp sanitize <scenario> [--scheduler wheel|heap] [--severity S] [--seed N] \
             [--perturb-seed N] [--shards N]"
        );
        eprintln!("scenarios: {}", sanitize_scenario_ids().join(", "));
        std::process::exit(2);
    };
    let scheduler = match take_flag_value(&mut args, "--scheduler").as_deref() {
        None | Some("wheel") => SchedulerKind::Wheel,
        Some("heap") => SchedulerKind::Heap,
        Some(other) => {
            eprintln!("--scheduler must be 'wheel' or 'heap', got '{other}'");
            std::process::exit(2);
        }
    };
    let severity = match take_flag_value(&mut args, "--severity") {
        Some(s) => match s.parse::<f64>() {
            Ok(v) if (0.0..=1.0).contains(&v) => v,
            _ => {
                eprintln!("--severity requires a number in [0, 1], got '{s}'");
                std::process::exit(2);
            }
        },
        None => 0.0,
    };
    let parse_seed = |flag: &str, default: u64, args: &mut Vec<String>| -> u64 {
        match take_flag_value(args, flag) {
            Some(s) => match s.parse::<u64>() {
                Ok(v) => v,
                Err(_) => {
                    eprintln!("{flag} requires an unsigned integer, got '{s}'");
                    std::process::exit(2);
                }
            },
            None => default,
        }
    };
    let seed = parse_seed("--seed", 1, &mut args);
    let perturb_seed =
        parse_seed("--perturb-seed", SanitizeOptions::default().perturb_seed, &mut args);
    let shards = match take_flag_value(&mut args, "--shards") {
        Some(s) => match s.parse::<usize>() {
            Ok(v) if v >= 1 => v,
            _ => {
                eprintln!("--shards requires an integer >= 1, got '{s}'");
                std::process::exit(2);
            }
        },
        None => 1,
    };
    if args.len() != 1 || args[0].starts_with("--") {
        usage();
    }
    let opts = SanitizeOptions {
        scenario: args.remove(0),
        scheduler,
        severity,
        seed,
        perturb_seed,
        shards,
    };
    let Some(result) = run_sanitize(&opts) else {
        eprintln!(
            "unknown scenario '{}' (choose from: {})",
            opts.scenario,
            sanitize_scenario_ids().join(", ")
        );
        std::process::exit(2);
    };
    print!("{}", result.summary);
    std::process::exit(if result.identical { 0 } else { 1 });
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();

    if args.first().map(String::as_str) == Some("lint") {
        args.remove(0);
        run_lint(args);
    }

    if args.first().map(String::as_str) == Some("trace") {
        args.remove(0);
        run_trace_cmd(args);
    }

    if args.first().map(String::as_str) == Some("profile") {
        args.remove(0);
        run_profile_cmd(args);
    }

    if args.first().map(String::as_str) == Some("sanitize") {
        args.remove(0);
        run_sanitize_cmd(args);
    }

    if args.first().map(String::as_str) == Some("gc") {
        args.remove(0);
        let store_root = take_flag_value(&mut args, "--store-dir")
            .map_or_else(Store::default_root, PathBuf::from);
        if !args.is_empty() {
            eprintln!("usage: xp gc [--store-dir DIR]");
            std::process::exit(2);
        }
        match run_gc(&store_root, &PathBuf::from("tests").join("golden")) {
            Ok(report) => {
                for path in &report.removed {
                    println!("removed {path}");
                }
                println!(
                    "gc[{}]: kept {} entries, removed {}",
                    store_root.display(),
                    report.kept,
                    report.removed.len()
                );
                return;
            }
            Err(e) => {
                eprintln!("xp gc: {e}");
                std::process::exit(1);
            }
        }
    }

    if args.first().map(String::as_str) == Some("bench") {
        args.remove(0);
        let out = take_flag_value(&mut args, "--out")
            .map_or_else(|| PathBuf::from("BENCH_simnet.json"), PathBuf::from);
        let floor_path = take_flag_value(&mut args, "--check-floor").map(PathBuf::from);
        let obs_path = take_flag_value(&mut args, "--check-obs").map(PathBuf::from);
        let baseline_path = take_flag_value(&mut args, "--export-baseline").map(PathBuf::from);
        let compare_baseline = take_flag_value(&mut args, "--baseline").map(PathBuf::from);
        // None = flag absent: per-entry and file-level defaults from the
        // baseline file apply, then DEFAULT_MAX_DROP.
        let max_drop = match take_flag_value(&mut args, "--max-drop") {
            Some(v) => match v.parse::<f64>() {
                Ok(d) if (0.0..1.0).contains(&d) => Some(d),
                _ => {
                    eprintln!("--max-drop requires a fraction in [0, 1), got '{v}'");
                    std::process::exit(2);
                }
            },
            None => None,
        };
        let replications = match take_flag_value(&mut args, "--replications") {
            Some(n) => match n.parse::<usize>() {
                Ok(n) if n > 0 => n,
                _ => {
                    eprintln!("--replications requires a positive integer, got '{n}'");
                    std::process::exit(2);
                }
            },
            None => 0,
        };
        let mut take_flag = |flag: &str| match args.iter().position(|a| a == flag) {
            Some(pos) => {
                args.remove(pos);
                true
            }
            None => false,
        };
        let quick = take_flag("--quick");
        let faults = take_flag("--faults");
        let strict = take_flag("--strict");
        if !args.is_empty() {
            eprintln!(
                "usage: xp bench [--quick] [--faults] [--replications N] [--out FILE] \
                 [--check-floor FLOOR_FILE] [--check-obs CEILING_FILE] \
                 [--export-baseline FILE] [--baseline FILE [--strict] [--max-drop F]]"
            );
            std::process::exit(2);
        }
        // Resolve the comparison baseline *before* the (minutes-long)
        // bench run: a missing or malformed file should fail in
        // milliseconds with its actionable message, not after the work.
        let baseline_entries = compare_baseline.as_ref().map(|compare_path| {
            let src = match std::fs::read_to_string(compare_path) {
                Ok(src) => src,
                Err(e) => {
                    eprintln!(
                        "xp bench: no baseline at {} ({e}).\n\
                         Record one from a known-good build first:\n\
                         \n    xp bench --export-baseline {}\n\
                         \nthen re-run with --baseline to gate against it.",
                        compare_path.display(),
                        compare_path.display()
                    );
                    std::process::exit(3);
                }
            };
            match apples_bench::baseline::parse_baseline(&src) {
                Ok(entries) => entries,
                Err(e) => {
                    eprintln!(
                        "xp bench: malformed baseline {}: {e}\n\
                         Re-export it with: xp bench --export-baseline {}",
                        compare_path.display(),
                        compare_path.display()
                    );
                    std::process::exit(4);
                }
            }
        });
        let opts = apples_bench::microbench::BenchOptions { quick, faults, replications };
        let (json, summary) = apples_bench::microbench::run_with_summary(&opts);
        if let Err(e) = std::fs::write(&out, json.render_pretty()) {
            eprintln!("cannot write {}: {e}", out.display());
            std::process::exit(1);
        }
        println!("{}", json.render_pretty());
        println!("wrote {}", out.display());
        if let Some(baseline_path) = baseline_path {
            let baseline = apples_bench::microbench::baseline_json(&summary, quick);
            if let Err(e) = std::fs::write(&baseline_path, baseline.render_pretty()) {
                eprintln!("cannot write {}: {e}", baseline_path.display());
                std::process::exit(1);
            }
            println!("wrote {}", baseline_path.display());
        }
        if let (Some(compare_path), Some(baseline)) = (compare_baseline, baseline_entries) {
            let failures = apples_bench::baseline::check(&summary, &baseline, max_drop);
            if failures.is_empty() {
                println!(
                    "baseline gate passed: {} scenarios within tolerance of {}, all results \
                     identical",
                    baseline.entries.len(),
                    compare_path.display()
                );
            } else {
                for f in &failures {
                    eprintln!("baseline gate: {f}");
                }
                if strict {
                    eprintln!("xp bench: {} baseline gate failure(s)", failures.len());
                    std::process::exit(2);
                }
                eprintln!("(advisory: pass --strict to make this fatal)");
            }
        }
        if let Some(floor_path) = floor_path {
            let floor_text = match std::fs::read_to_string(&floor_path) {
                Ok(text) => text,
                Err(e) => {
                    eprintln!("cannot read floor file {}: {e}", floor_path.display());
                    std::process::exit(1);
                }
            };
            let failures = apples_bench::microbench::check_floor(&summary, &floor_text);
            if failures.is_empty() {
                println!(
                    "perf-sanity OK: {:.2}M events/s on forward-2stage (wheel), all results identical",
                    summary.forward_wheel_events_per_sec / 1e6
                );
            } else {
                for f in &failures {
                    eprintln!("perf-sanity FAILED: {f}");
                }
                std::process::exit(1);
            }
        }
        if let Some(obs_path) = obs_path {
            let ceiling_text = match std::fs::read_to_string(&obs_path) {
                Ok(text) => text,
                Err(e) => {
                    eprintln!("cannot read obs ceiling file {}: {e}", obs_path.display());
                    std::process::exit(1);
                }
            };
            let failures = apples_bench::microbench::check_obs_overhead(&summary, &ceiling_text);
            if failures.is_empty() {
                println!(
                    "observability OK: {:.3}x span-profiler overhead, zero cost when off",
                    summary.obs_overhead_ratio
                );
            } else {
                for f in &failures {
                    eprintln!("observability FAILED: {f}");
                }
                std::process::exit(1);
            }
        }
        return;
    }

    let csv_dir = take_flag_value(&mut args, "--csv-dir").map(PathBuf::from);
    let md_dir = take_flag_value(&mut args, "--md-dir").map(PathBuf::from);
    let store_root =
        take_flag_value(&mut args, "--store-dir").map_or_else(Store::default_root, PathBuf::from);
    let threads = match take_flag_value(&mut args, "--threads") {
        Some(n) => match n.parse::<usize>() {
            Ok(n) if n > 0 => Some(n),
            _ => {
                eprintln!("--threads requires a positive integer, got '{n}'");
                std::process::exit(2);
            }
        },
        None => None,
    };
    let mut take_flag = |flag: &str| match args.iter().position(|a| a == flag) {
        Some(pos) => {
            args.remove(pos);
            true
        }
        None => false,
    };
    let no_cache = take_flag("--no-cache");
    let explain = take_flag("--explain");

    if args.iter().any(|a| a == "--list") {
        for id in ALL_IDS {
            println!("{id}");
        }
        return;
    }

    if args.is_empty() {
        eprintln!(
            "usage: xp [--csv-dir DIR] [--md-dir DIR] [--threads N] [--store-dir DIR] \
             [--no-cache] [--explain] [--list] \
             <experiment-id>... | all | bench | gc | lint | trace | profile | sanitize"
        );
        eprintln!("experiments: {}", ALL_IDS.join(", "));
        std::process::exit(2);
    }

    let ids: Vec<String> = if args.iter().any(|a| a == "all") {
        ALL_IDS.iter().map(|&s| s.to_owned()).collect()
    } else {
        args
    };

    // Experiments are independent and deterministic: the store driver
    // plans the DAG, re-runs only dirty experiments on the pool, and
    // assembles stdout in request order — byte-identical whether a
    // report came from a fresh run or the cache.
    let opts = XpAllOptions {
        ids,
        no_cache,
        store_root,
        golden_dir: PathBuf::from("tests").join("golden"),
        csv_dir,
        md_dir,
        threads,
    };
    match run_all(&opts) {
        Ok(outcome) => {
            print!("{}", outcome.stdout);
            if explain {
                eprint!("{}", outcome.explain);
            }
        }
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(1);
        }
    }
}
