//! # apples-bench
//!
//! The experiment harness: every table, figure, and worked example of
//! the paper, regenerated from the methodology engine plus the simulated
//! substrate, with paper-vs-measured output.
//!
//! Run `cargo run -p apples-bench --bin xp -- all` to execute every
//! experiment, or pass an experiment id (`table1`, `fig1a`, `fig1b`,
//! `fig2`, `fig3`, `ex41`, `ex42`, `ex421`, `ex43`, `crossover`,
//! `ablation-scaling`, `ablation-coverage`, `ablation-jfi`).

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod baseline;
pub mod experiments;
pub mod microbench;
pub mod pool;
pub mod profilecmd;
pub mod report;
pub mod sanitizecmd;
pub mod scenarios;
pub mod tracecmd;
pub mod wallclock;
pub mod xpall;

pub use pool::Pool;
pub use report::ExperimentReport;
