//! Figure 3: bringing a baseline into the comparison region by ideal
//! scaling (Principle 6), with the paper's §4.2.1 numbers.
//!
//! B = 35 Gbps at 100 W (all host cores); A = 100 Gbps at 200 W (host +
//! switch). B is outside A's region; ideal linear scaling brings it to
//! 70 Gbps @ 200 W (equal cost) or 100 Gbps @ 286 W (equal perf), and A
//! dominates both anchors.

use crate::report::ExperimentReport;
use apples_core::dominance::{in_comparison_region, relate};
use apples_core::report::Csv;
use apples_core::scaling::{IdealLinear, ScalingModel};
use apples_core::OperatingPoint;
use apples_metrics::perf::PerfMetric;
use apples_metrics::quantity::{gbps, watts};
use apples_metrics::CostMetric;

fn tp(g: f64, w: f64) -> OperatingPoint {
    OperatingPoint::new(
        PerfMetric::throughput_bps().value(gbps(g)),
        CostMetric::power_draw().value(watts(w)),
    )
}

/// Runs the experiment.
pub fn run() -> ExperimentReport {
    let mut r = ExperimentReport::new("fig3", "Figure 3: ideal scaling into the comparison region");
    r.paper_line("B (35 Gbps, 100 W) is outside A's (100 Gbps, 200 W) region; linear scaling reaches 70 Gbps @ 200 W or 100 Gbps @ 286 W, and A \u{227b} scaled-B at both");

    let a = tp(100.0, 200.0);
    let b = tp(35.0, 100.0);
    assert!(!in_comparison_region(&b, &a), "B starts outside the region");

    // The scaling trajectory (the dashed line of the middle panel).
    let mut csv = Csv::new(["k", "gbps", "watts", "in_region_of_A"]);
    let mut entered_at = None;
    let mut k = 1.0f64;
    while k <= 3.2 {
        let p = IdealLinear.scale(&b, k).expect("scalable");
        let inside = in_comparison_region(&p, &a);
        if inside && entered_at.is_none() {
            entered_at = Some(k);
        }
        csv.row([
            format!("{k:.2}"),
            format!("{:.3}", p.perf().quantity().value() / 1e9),
            format!("{:.3}", p.cost().quantity().value()),
            format!("{inside}"),
        ]);
        k += 0.05;
    }

    let (k_cost, at_cost) = IdealLinear.scale_to_match_cost(&b, &a).expect("reachable");
    let (k_perf, at_perf) = IdealLinear.scale_to_match_perf(&b, &a).expect("reachable");

    r.measured_line(format!(
        "trajectory enters A's comparison region at k = {:.2}",
        entered_at.expect("the trajectory crosses the region")
    ));
    r.measured_line(format!(
        "equal-cost anchor : k = {:.3} -> {:.1} Gbps @ {:.0} W; A {} it",
        k_cost,
        at_cost.perf().quantity().value() / 1e9,
        at_cost.cost().quantity().value(),
        relate(&a, &at_cost)
    ));
    r.measured_line(format!(
        "equal-perf anchor : k = {:.3} -> {:.1} Gbps @ {:.1} W; A {} it",
        k_perf,
        at_perf.perf().quantity().value() / 1e9,
        at_perf.cost().quantity().value(),
        relate(&a, &at_perf)
    ));
    r.table("fig3-trajectory", csv);
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use apples_core::dominance::Relation;

    #[test]
    fn anchors_match_the_papers_numbers() {
        let a = tp(100.0, 200.0);
        let b = tp(35.0, 100.0);
        let (_, at_cost) = IdealLinear.scale_to_match_cost(&b, &a).unwrap();
        assert!((at_cost.perf().quantity().value() / 1e9 - 70.0).abs() < 1e-6);
        let (_, at_perf) = IdealLinear.scale_to_match_perf(&b, &a).unwrap();
        assert!((at_perf.cost().quantity().value() - 285.714).abs() < 0.01);
        assert_eq!(relate(&a, &at_cost), Relation::Dominates);
        assert_eq!(relate(&a, &at_perf), Relation::Dominates);
    }

    #[test]
    fn report_mentions_both_anchors() {
        let r = run();
        let text = r.render();
        assert!(text.contains("equal-cost anchor"));
        assert!(text.contains("equal-perf anchor"));
        assert!(text.contains("70.0 Gbps @ 200 W"));
    }
}
