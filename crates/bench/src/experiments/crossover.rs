//! Extension experiment: where does the accelerated design start to
//! win? A sweep over offered load comparing CPU-only, SmartNIC, and
//! switch-fronted deployments on delivered throughput, watts, and the
//! efficiency ratio (bits per joule), with the fair-comparison verdict
//! at each load.
//!
//! The shape this should (and does) produce: at low load the accelerated
//! systems' idle floors make them strictly worse (the baseline
//! dominates); past the baseline's saturation point the accelerators
//! deliver more bits per joule and the scaled comparison flips.

use crate::report::ExperimentReport;
use crate::scenarios::{
    baseline_host, measure, mtu_workload, smartnic_system, switch_system, to_gbps,
};
use apples_core::report::Csv;
use apples_core::scaling::IdealLinear;
use apples_core::Evaluation;

/// Runs the experiment.
pub fn run() -> ExperimentReport {
    let mut r =
        ExperimentReport::new("crossover", "extension: load sweep and efficiency crossover");
    r.paper_line("(not in the paper — the ablation its methodology enables: find the operating regimes where each design is defensible)");

    let loads = [1.0, 2.0, 5.0, 10.0, 15.0, 20.0, 30.0, 45.0];
    let mut csv = Csv::new([
        "offered_gbps",
        "base_gbps",
        "base_watts",
        "nic_gbps",
        "nic_watts",
        "switch_gbps",
        "switch_watts",
        "nic_verdict_favors",
        "switch_verdict_favors",
    ]);

    let mut nic_first_win = None;
    let mut switch_first_win = None;
    // Each load point needs three independent simulations: run the
    // whole 8x3 grid on the pool, then fold the (order-dependent)
    // first-win detection serially over the points in sweep order.
    let points = crate::pool::Pool::new().map(loads.to_vec(), |load| {
        let wl = mtu_workload(load, 11);
        let inner = crate::pool::Pool::new();
        let mut runs = inner.run::<apples_simnet::system::Measurement, _>(vec![
            Box::new(|| measure(&baseline_host(2), &wl))
                as Box<dyn FnOnce() -> apples_simnet::system::Measurement + Send>,
            Box::new(|| measure(&smartnic_system(), &wl)),
            Box::new(|| measure(&switch_system(2), &wl)),
        ]);
        let sw = runs.pop().expect("three runs");
        let nic = runs.pop().expect("three runs");
        let base = runs.pop().expect("three runs");
        (load, base, nic, sw)
    });
    for (load, base, nic, sw) in points {
        let verdict_for = |m: &apples_simnet::system::Measurement| {
            Evaluation::new(m.as_system(), base.as_system())
                .with_baseline_scaling(&IdealLinear)
                .run()
                .verdict
        };
        let nv = verdict_for(&nic);
        let sv = verdict_for(&sw);
        if nv.favors_proposed() && nic_first_win.is_none() {
            nic_first_win = Some(load);
        }
        if sv.favors_proposed() && switch_first_win.is_none() {
            switch_first_win = Some(load);
        }

        csv.row([
            format!("{load}"),
            format!("{:.3}", to_gbps(base.throughput_bps)),
            format!("{:.2}", base.watts),
            format!("{:.3}", to_gbps(nic.throughput_bps)),
            format!("{:.2}", nic.watts),
            format!("{:.3}", to_gbps(sw.throughput_bps)),
            format!("{:.2}", sw.watts),
            format!("{}", nv.favors_proposed()),
            format!("{}", sv.favors_proposed()),
        ]);
    }

    r.measured_line(format!(
        "smartnic first defensibly superior at offered load: {}",
        nic_first_win.map_or("never".to_owned(), |l| format!("{l} Gbps"))
    ));
    r.measured_line(format!(
        "switch-fronted first defensibly superior at offered load: {}",
        switch_first_win.map_or("never".to_owned(), |l| format!("{l} Gbps"))
    ));
    match (nic_first_win, switch_first_win) {
        (Some(_), None) => r.measured_line(
            "below its crossover the baseline dominates (the accelerator's idle floor is dead \
             weight); above it the SmartNIC design prevails even against an ideally scaled \
             baseline. The switch's ~100 W floor never pays off at this deployment scale — \
             an honest negative result the methodology surfaces instead of hiding"
                .to_owned(),
        ),
        _ => r.measured_line(
            "below each crossover the baseline dominates (accelerator idle floors); above it \
             the accelerated design prevails even against an ideally scaled baseline"
                .to_owned(),
        ),
    };
    r.table("crossover-sweep", csv);
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_all_loads_and_finds_a_crossover() {
        let r = run();
        let (_, csv) = &r.tables[0];
        assert_eq!(csv.len(), 8);
        let text = r.render();
        // At least one accelerated design must eventually win.
        assert!(text.contains("Gbps"), "{text}");
        assert!(
            !text.contains("smartnic first defensibly superior at offered load: never"),
            "{text}"
        );
    }
}
