//! Per-stage telemetry experiment: the observability layer's counters
//! and latency/queue-depth distributions for the worked-example
//! contenders, clean and under moderate faults.
//!
//! Where the other experiments report each system as one operating
//! point, this one opens the box: which stage does the work, where
//! packets queue, and how the fault layer's losses distribute across
//! the pipeline — all from the same deterministic runs, so every number
//! here is byte-reproducible.

use crate::report::ExperimentReport;
use crate::scenarios::{
    baseline_host, faulted, perturbed_workload, severity_ladder, smartnic_system, switch_system,
    RUN_NS, WARMUP_NS,
};
use apples_core::report::Csv;
use apples_obs::ObsConfig;
use apples_simnet::system::Deployment;

/// The moderate rung of the (effective) severity ladder, where faults
/// bite without flattening every distribution. Read from
/// [`severity_ladder`] so a targeted override genuinely changes this
/// experiment, keeping its provenance digest honest.
fn moderate_severity() -> f64 {
    severity_ladder("telemetry")
        .into_iter()
        .find(|(name, _)| name == "moderate")
        .map_or(0.5, |(_, s)| s)
}

fn contenders() -> Vec<(&'static str, Deployment)> {
    vec![
        ("base-2c", baseline_host(2)),
        ("smartnic", smartnic_system()),
        ("switch-2c", switch_system(2)),
    ]
}

/// Runs the telemetry experiment.
pub fn run() -> ExperimentReport {
    let mut r = ExperimentReport::new(
        "telemetry",
        "per-stage telemetry: counters and wait/service distributions, clean vs moderate faults",
    );
    r.paper_line(
        "(extension — deterministic observability: the per-stage story behind each verdict, \
         from runs whose simulated numbers are byte-identical to the unobserved ones)",
    );

    let mut csv = Csv::new([
        "condition",
        "system",
        "stage",
        "arrivals",
        "served",
        "drops",
        "fault_events",
        "peak_depth",
        "wait_p50_ns",
        "wait_p99_ns",
        "svc_p50_ns",
        "svc_p99_ns",
    ]);
    for (cond, severity) in [("clean", 0.0), ("moderate", moderate_severity())] {
        for (label, d) in contenders() {
            let wl = perturbed_workload(120.0, 1, severity);
            let (m, obs) = faulted(d, severity).run_observed(
                &wl,
                RUN_NS,
                WARMUP_NS,
                &ObsConfig::telemetry_only(),
            );
            let Some(tel) = obs.telemetry.as_ref() else { continue };
            for (i, st) in tel.stages.iter().enumerate() {
                let name =
                    m.stages.get(i).map_or_else(|| format!("stage{i}"), |s| s.name.to_owned());
                csv.row([
                    cond.to_owned(),
                    label.to_owned(),
                    name,
                    format!("{}", st.arrivals),
                    format!("{}", st.served),
                    format!("{}", st.drops()),
                    format!("{}", st.fault_events),
                    format!("{}", st.peak_depth),
                    format!("{}", st.wait_ns.quantile(0.50)),
                    format!("{}", st.wait_ns.quantile(0.99)),
                    format!("{}", st.service_ns.quantile(0.50)),
                    format!("{}", st.service_ns.quantile(0.99)),
                ]);
            }
            if cond == "moderate" {
                let busiest = tel
                    .busiest_stage()
                    .and_then(|i| m.stages.get(i))
                    .map_or_else(|| "none".to_owned(), |s| s.name.to_owned());
                let deepest = tel
                    .deepest_queue()
                    .and_then(|i| m.stages.get(i))
                    .map_or_else(|| "none".to_owned(), |s| s.name.to_owned());
                r.measured_line(format!(
                    "{label} at moderate faults: busiest stage {busiest}, deepest queue \
                     {deepest}, {} fault-layer drops",
                    tel.stages.iter().map(|s| s.fault_drops).sum::<u64>(),
                ));
            }
        }
    }
    r.measured_line(
        "telemetry is collected whole-run (not warmup-gated) and merges associatively \
         across worker shards; the observed runs' measurements are bit-identical to the \
         unobserved baselines"
            .to_owned(),
    );
    r.table("stage-telemetry", csv);
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn telemetry_report_covers_both_conditions_and_all_contenders() {
        let r = run();
        let (_, csv) = &r.tables[0];
        // base-2c has 1 stage, smartnic 2, switch 2 -> 5 rows per condition.
        assert_eq!(csv.len(), 10, "2 conditions x (1 + 2 + 2) stages");
        let text = r.render();
        assert!(text.contains("busiest stage"), "{text}");
        assert!(text.contains("clean"), "{text}");
        assert!(text.contains("moderate"), "{text}");
    }

    #[test]
    fn telemetry_report_is_deterministic() {
        assert_eq!(run().render(), run().render());
    }
}
