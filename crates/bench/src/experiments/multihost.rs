//! Extension experiment: Principle 5 taken literally — *provision* the
//! baseline at 1..4 hosts and measure, instead of assuming a scaling
//! law.
//!
//! §4.2.1 motivates ideal scaling by the cost of provisioning multiple
//! hosts; the simulator can afford to. The measured cluster curve shows
//! both deviations from the ideal ray at once: throughput scales
//! *sub-linearly* (ECMP flow-hash imbalance leaves replicas unevenly
//! loaded) while cost scales *sub-linearly too* (the splitter is
//! amortized, and replicas that run below saturation draw less than
//! peak). The verdict against an accelerated target is then computed
//! under both the measured curve and the ideal bound.

use crate::report::ExperimentReport;
use crate::scenarios::{full_chain, switch_system, to_gbps, CONTENTION_ALPHA, RUN_NS, WARMUP_NS};
use apples_core::report::{render_text, Csv};
use apples_core::scaling::{IdealLinear, MeasuredCurve};
use apples_core::Evaluation;
use apples_simnet::system::Deployment;
use apples_workload::{ArrivalProcess, PacketSizeDist, WorkloadSpec};

fn saturating() -> WorkloadSpec {
    WorkloadSpec {
        sizes: PacketSizeDist::Fixed(1500),
        arrivals: ArrivalProcess::Poisson { rate_pps: 200.0 * 1e9 / (1520.0 * 8.0) },
        flows: 512,
        zipf_s: 1.0,
        seed: 71,
    }
}

/// Runs the experiment.
pub fn run() -> ExperimentReport {
    let mut r = ExperimentReport::new(
        "multihost",
        "extension: principle 5 literally — measured multi-host provisioning vs ideal scaling",
    );
    r.paper_line("\u{a7}4.2.1: \"we would need to provision multiple hosts in order to further scale the baseline\" — here we do, and compare the measured curve to the ideal bound");

    let wl = saturating();
    let mut csv =
        Csv::new(["replicas", "gbps", "watts", "perf_factor", "cost_factor", "ideal_perf_factor"]);
    let mut measurements = Vec::new();
    for replicas in [1u32, 2, 3, 4] {
        let m = Deployment::replicated_cluster(
            format!("cluster-{replicas}"),
            replicas,
            2,
            CONTENTION_ALPHA,
            full_chain,
        )
        .run(&wl, RUN_NS, WARMUP_NS);
        measurements.push((replicas, m));
    }
    let base = &measurements[0].1;
    let mut samples = Vec::new();
    for (k, m) in &measurements {
        let pf = m.throughput_bps / base.throughput_bps;
        let cf = m.watts / base.watts;
        samples.push((f64::from(*k), pf, cf));
        csv.row([
            k.to_string(),
            format!("{:.3}", to_gbps(m.throughput_bps)),
            format!("{:.2}", m.watts),
            format!("{pf:.3}"),
            format!("{cf:.3}"),
            format!("{k}.000"),
        ]);
    }
    let (pf4, cf4) = (samples[3].1, samples[3].2);
    r.measured_line(format!(
        "4 hosts deliver x{pf4:.2} the throughput (ideal: x4.00 — ECMP imbalance) at x{cf4:.2} \
         the watts (ideal: x4.00 — the splitter is amortized and cool replicas idle)"
    ));

    // Verdict against the switch-accelerated system under both models.
    let curve = MeasuredCurve::from_samples(samples);
    let accel = crate::scenarios::measure(&switch_system(8), &wl);
    let measured_verdict =
        Evaluation::new(accel.as_system(), base.as_system()).with_baseline_scaling(&curve).run();
    let ideal_verdict = Evaluation::new(accel.as_system(), base.as_system())
        .with_baseline_scaling(&IdealLinear)
        .run();
    r.measured_line(format!("accelerated target: {}", accel.as_system()));
    r.measured_line("— under the measured (provisioned) cluster curve —".to_owned());
    for line in render_text(&measured_verdict).lines().skip(5) {
        r.measured_line(line.to_owned());
    }
    r.measured_line(format!("— under the ideal bound — verdict: {}", ideal_verdict.verdict));
    r.table("multihost-curve", csv);
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measured_cluster_curve_is_sublinear_in_perf() {
        let rep = run();
        let (_, csv) = &rep.tables[0];
        assert_eq!(csv.len(), 4);
        let text = rep.render();
        assert!(text.contains("ECMP imbalance"), "{text}");
        assert!(text.contains("verdict"), "{text}");
    }
}
