//! §4.2's worked example: the SmartNIC-accelerated firewall, evaluated
//! twice — once with the paper's own numbers, once end-to-end on the
//! simulated substrate (measure → build the measured scaling curve →
//! evaluate).

use crate::report::ExperimentReport;
use crate::scenarios::{baseline_host, measure, saturating_workload, smartnic_system, to_gbps};
use apples_core::report::{render_text, Csv};
use apples_core::scaling::MeasuredCurve;
use apples_core::{Evaluation, OperatingPoint, System};
use apples_metrics::cost::DeviceClass;
use apples_metrics::perf::PerfMetric;
use apples_metrics::quantity::{gbps, watts};
use apples_metrics::CostMetric;

fn tp(g: f64, w: f64) -> OperatingPoint {
    OperatingPoint::new(
        PerfMetric::throughput_bps().value(gbps(g)),
        CostMetric::power_draw().value(watts(w)),
    )
}

/// The paper-number replay: B = 10 Gbps/50 W (1 core), A = 20 Gbps/70 W,
/// B@2cores = 18 Gbps/80 W.
pub fn paper_replay() -> apples_core::evaluate::EvaluationResult {
    let curve = MeasuredCurve::from_samples(vec![(1.0, 1.0, 1.0), (2.0, 1.8, 1.6)]);
    Evaluation::new(
        System::new(
            "firewall+smartnic (paper)",
            vec![DeviceClass::Cpu, DeviceClass::SmartNic],
            tp(20.0, 70.0),
        ),
        System::new("firewall (paper)", vec![DeviceClass::Cpu, DeviceClass::Nic], tp(10.0, 50.0)),
    )
    .with_baseline_scaling(&curve)
    .run()
}

/// Runs the experiment.
pub fn run() -> ExperimentReport {
    let mut r =
        ExperimentReport::new("ex42", "\u{a7}4.2: SmartNIC firewall vs scaled software baseline");
    r.paper_line("baseline: 10 Gbps / 50 W at 1 core; 18 Gbps / 80 W at 2 cores");
    r.paper_line(
        "proposed (SmartNIC): 20 Gbps / 70 W -> incomparable until the baseline is scaled",
    );
    r.paper_line("conclusion: the proposed system is better at this performance-cost target");

    // Part 1: paper numbers through the engine.
    let replay = paper_replay();
    r.measured_line("— paper-number replay —".to_owned());
    for line in render_text(&replay).lines() {
        r.measured_line(line.to_owned());
    }

    // Part 2: full simulation. Measure the baseline's core-scaling curve
    // (Principle 5: actually provision it) and the SmartNIC system.
    let wl = saturating_workload(1);
    let base_points: Vec<_> =
        [1u32, 2, 3, 4].iter().map(|&c| (c, measure(&baseline_host(c), &wl))).collect();
    let nic = measure(&smartnic_system(), &wl);

    let mut csv = Csv::new(["system", "cores", "gbps", "watts"]);
    for (c, m) in &base_points {
        csv.row([
            "baseline".to_owned(),
            c.to_string(),
            format!("{:.4}", to_gbps(m.throughput_bps)),
            format!("{:.2}", m.watts),
        ]);
    }
    csv.row([
        "smartnic".to_owned(),
        "4nic+1host".to_owned(),
        format!("{:.4}", to_gbps(nic.throughput_bps)),
        format!("{:.2}", nic.watts),
    ]);

    let base1 = &base_points[0].1;
    let samples: Vec<(f64, f64, f64)> = base_points
        .iter()
        .map(|(c, m)| {
            (f64::from(*c), m.throughput_bps / base1.throughput_bps, m.watts / base1.watts)
        })
        .collect();
    let curve = MeasuredCurve::from_samples(samples);

    let result =
        Evaluation::new(nic.as_system(), base1.as_system()).with_baseline_scaling(&curve).run();

    r.measured_line("— simulated substrate —".to_owned());
    r.measured_line(format!(
        "baseline 1 core : {:.2} Gbps / {:.1} W; 2 cores: {:.2} Gbps / {:.1} W (x{:.2} perf)",
        to_gbps(base1.throughput_bps),
        base1.watts,
        to_gbps(base_points[1].1.throughput_bps),
        base_points[1].1.watts,
        base_points[1].1.throughput_bps / base1.throughput_bps,
    ));
    r.measured_line(format!(
        "smartnic        : {:.2} Gbps / {:.1} W (x{:.2} perf, x{:.2} power vs 1-core baseline)",
        to_gbps(nic.throughput_bps),
        nic.watts,
        nic.throughput_bps / base1.throughput_bps,
        nic.watts / base1.watts,
    ));
    for line in render_text(&result).lines() {
        r.measured_line(line.to_owned());
    }
    r.table("ex42-points", csv);
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use apples_core::verdict::{ScaledOutcome, Verdict};

    #[test]
    fn paper_replay_reaches_the_papers_conclusion() {
        let res = paper_replay();
        match &res.verdict {
            Verdict::Scaled { outcome, .. } => {
                assert_eq!(*outcome, ScaledOutcome::ProposedPrevails)
            }
            other => panic!("unexpected verdict {other:?}"),
        }
        assert!(res.verdict.favors_proposed());
    }

    #[test]
    fn simulated_run_is_incomparable_before_scaling() {
        let text = run().render();
        assert!(text.contains("proposed is incomparable with baseline"), "{text}");
    }

    #[test]
    fn simulated_verdict_is_reported() {
        let text = run().render();
        assert!(text.contains("verdict:"), "{text}");
        assert!(text.contains("measured scaling of the baseline"), "{text}");
    }
}
