//! Figure 1: same-regime comparisons are unidimensional (Principle 4).
//!
//! - Figure 1a ("improving performance"): same hardware and cost, a
//!   software optimization raises throughput — our bucketed firewall vs
//!   the linear scan on one core.
//! - Figure 1b ("improving cost"): same performance target, fewer
//!   resources — cores needed to carry a fixed offered load with the
//!   optimized vs baseline firewall.

use crate::report::ExperimentReport;
use crate::scenarios::{
    baseline_host, measure, mtu_workload, optimized_host, saturating_workload, to_gbps,
};
use apples_core::regime::{detect_regime, unidimensional_claim, Regime, Tolerance};
use apples_core::report::Csv;

/// Figure 1a: performance improvement at identical cost.
pub fn run_fig1a() -> ExperimentReport {
    let mut r = ExperimentReport::new("fig1a", "Figure 1a: same cost, better performance");
    r.paper_line("\"the proposed system improves throughput with a single core from 10 Gbps to 15 Gbps\" (\u{a7}4.1, illustrative)");

    let wl = saturating_workload(1);
    let base = measure(&baseline_host(1), &wl);
    let opt = measure(&optimized_host(1), &wl);

    let bp = base.throughput_power_point();
    let op = opt.throughput_power_point();
    // Saturated single cores: power nearly identical -> same cost regime.
    let tol = Tolerance::new(0.05);
    let regime = detect_regime(&op, &bp, tol);
    let claim = unidimensional_claim(&op, &bp, tol);

    r.measured_line(format!(
        "baseline  : {:.2} Gbps at {:.1} W (linear 100-rule ACL, 1 core)",
        to_gbps(base.throughput_bps),
        base.watts
    ));
    r.measured_line(format!(
        "optimized : {:.2} Gbps at {:.1} W (bucket-compiled ACL, same core)",
        to_gbps(opt.throughput_bps),
        opt.watts
    ));
    r.measured_line(format!("regime: {regime}"));
    if let Some(c) = claim {
        r.measured_line(format!("unidimensional claim: {c}"));
    }

    let mut csv = Csv::new(["system", "gbps", "watts"]);
    csv.row([
        "baseline".to_owned(),
        format!("{:.4}", to_gbps(base.throughput_bps)),
        format!("{:.2}", base.watts),
    ]);
    csv.row([
        "optimized".to_owned(),
        format!("{:.4}", to_gbps(opt.throughput_bps)),
        format!("{:.2}", opt.watts),
    ]);
    r.table("fig1a", csv);
    r
}

/// Figure 1b: cost reduction at identical performance.
pub fn run_fig1b() -> ExperimentReport {
    let mut r = ExperimentReport::new("fig1b", "Figure 1b: same performance, lower cost");
    r.paper_line("\"the proposed system reduces the number of cores required to saturate a 100 Gbps link from 8 to 4\" (\u{a7}4.1, illustrative)");

    // Fixed offered load; find the smallest core count whose delivered
    // throughput carries >= 99% of what the biggest config carries.
    let target = mtu_workload(25.0, 3);
    let carried = |d: &apples_simnet::system::Deployment| {
        let m = measure(d, &target);
        (m.throughput_bps, m.watts)
    };

    let mut csv = Csv::new(["cores", "variant", "gbps", "watts"]);
    let mut base_needed = None;
    let mut opt_needed = None;
    let mut reference = 0.0f64;
    for cores in [8u32, 4, 2, 1] {
        // Descending so the 8-core run defines the achievable reference.
        let (b_bps, b_w) = carried(&baseline_host(cores));
        let (o_bps, o_w) = carried(&optimized_host(cores));
        if cores == 8 {
            reference = b_bps.max(o_bps);
        }
        csv.row([
            cores.to_string(),
            "baseline".to_owned(),
            format!("{:.4}", to_gbps(b_bps)),
            format!("{:.2}", b_w),
        ]);
        csv.row([
            cores.to_string(),
            "optimized".to_owned(),
            format!("{:.4}", to_gbps(o_bps)),
            format!("{:.2}", o_w),
        ]);
        if b_bps >= 0.99 * reference {
            base_needed = Some(cores);
        }
        if o_bps >= 0.99 * reference {
            opt_needed = Some(cores);
        }
    }

    let (bn, on) = (base_needed.unwrap_or(8), opt_needed.unwrap_or(8));
    r.measured_line("offered load: 25 Gbps of MTU traffic");
    r.measured_line(format!("baseline needs {bn} cores to carry it; optimized needs {on}"));
    if on < bn {
        r.measured_line(format!(
            "same performance regime: cost reduced {bn} -> {on} cores (Figure 1b's shape)"
        ));
    }
    // The regime check at the matched core counts.
    let bm = measure(&baseline_host(bn), &target);
    let om = measure(&optimized_host(on), &target);
    let regime = detect_regime(
        &om.throughput_power_point(),
        &bm.throughput_power_point(),
        Tolerance::new(0.02),
    );
    r.measured_line(format!(
        "regime at matched configs: {regime} ({:.1} W -> {:.1} W)",
        bm.watts, om.watts
    ));
    assert_eq!(regime, Regime::SamePerf, "fig1b should land in the same-perf regime");
    r.table("fig1b", csv);
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1a_finds_same_cost_regime_with_speedup() {
        let r = run_fig1a();
        let text = r.render();
        assert!(text.contains("same cost regime"), "{text}");
        assert!(text.contains("performance at equal cost"), "{text}");
    }

    #[test]
    fn fig1b_reduces_cores_at_same_perf() {
        let r = run_fig1b();
        let text = r.render();
        assert!(text.contains("same performance regime"), "{text}");
    }
}
