//! One module per paper artifact; see DESIGN.md's experiment index.

pub mod ablations;
pub mod batching;
pub mod checklist;
pub mod crossover;
pub mod efficiency;
pub mod ex41;
pub mod ex42;
pub mod ex421;
pub mod ex43;
pub mod fig1;
pub mod fig2;
pub mod fig3;
pub mod ips;
pub mod multihost;
pub mod multimetric;
pub mod noise;
pub mod rfc2544;
pub mod robustness;
pub mod rss;
pub mod sensitivity;
pub mod table1;
pub mod telemetry;

use crate::report::ExperimentReport;
use crate::scenarios::{severity_ladder, WARMUP_NS};
use apples_obs::{fnv1a_hex, Provenance};
use apples_simnet::fault::FaultSpec;

/// Every experiment id, in presentation order.
pub const ALL_IDS: [&str; 27] = [
    "table1",
    "fig1a",
    "fig1b",
    "fig2",
    "fig3",
    "ex41",
    "ex42",
    "ex421",
    "ex43",
    "crossover",
    "ips",
    "multimetric",
    "efficiency",
    "rfc2544",
    "multihost",
    "batching",
    "sensitivity",
    "checklist",
    "telemetry",
    "ablation-scaling",
    "ablation-coverage",
    "ablation-jfi",
    "ablation-rss",
    "ablation-noise",
    "robustness-frontier",
    "robustness-verdict",
    "robustness-crossover",
];

/// True for the experiments whose numbers depend on the fault layer —
/// their provenance (and store keys) carry the severity-ladder digest.
pub fn uses_faults(id: &str) -> bool {
    id.starts_with("robustness-") || id == "telemetry"
}

/// The shared scenario calibration as the exact string the config
/// digest has always hashed (minus the leading `id=` component). Every
/// experiment builds on these constants, so they are one shared
/// upstream node in the store DAG.
fn calibration_string() -> String {
    format!(
        "fw_rules={};deny={:?};fw_seed={};alpha={:?};run_ns={};warmup_ns={}",
        crate::scenarios::FW_RULES,
        crate::scenarios::FW_DENY_FRACTION,
        crate::scenarios::FW_SEED,
        crate::scenarios::CONTENTION_ALPHA,
        crate::scenarios::RUN_NS,
        WARMUP_NS,
    )
}

/// Digest of the shared calibration constants alone.
pub fn calibration_digest() -> String {
    fnv1a_hex(calibration_string().as_bytes())
}

/// Digest of one experiment's configuration: the id plus the shared
/// calibration, byte-compatible with the PR-5 stamp format.
pub fn config_digest(id: &str) -> String {
    fnv1a_hex(format!("id={id};{}", calibration_string()).as_bytes())
}

/// Digest of one experiment's effective severity ladder: the
/// concatenated [`FaultSpec::at_severity`] digests of every rung,
/// hashed once. Any change to the ladder or the fault mix behind it —
/// including a targeted `APPLES_SEVERITY_OVERRIDE` — shows up in the
/// fault-injecting report's provenance.
pub fn ladder_digest(id: &str) -> String {
    let concat: Vec<String> =
        severity_ladder(id).iter().map(|(_, s)| FaultSpec::at_severity(*s).digest()).collect();
    fnv1a_hex(concat.join(",").as_bytes())
}

/// The fault-digest provenance field for one experiment: the ladder
/// digest when faults are in play, the stable string `none` otherwise.
pub fn fault_digest(id: &str) -> String {
    if uses_faults(id) {
        ladder_digest(id)
    } else {
        "none".to_owned()
    }
}

/// The full provenance stamp for one experiment id — the same value the
/// report carries and the store keys on, which is what makes a cache
/// hit provably equivalent to a re-run.
pub fn experiment_provenance(id: &str) -> Provenance {
    Provenance::new(1, "wheel", fault_digest(id), config_digest(id))
}

/// Stamps a report with the harness-level provenance: the reference
/// workload seed, the production scheduler, the fault digest (the
/// severity-ladder digest for fault-injecting experiments, `none`
/// otherwise), and a digest over the shared scenario calibration that
/// every experiment builds on.
fn stamp(mut report: ExperimentReport) -> ExperimentReport {
    report.set_provenance(experiment_provenance(report.id));
    report
}

/// Runs one experiment by id.
pub fn run(id: &str) -> Option<ExperimentReport> {
    run_unstamped(id).map(stamp)
}

fn run_unstamped(id: &str) -> Option<ExperimentReport> {
    match id {
        "table1" => Some(table1::run()),
        "fig1a" => Some(fig1::run_fig1a()),
        "fig1b" => Some(fig1::run_fig1b()),
        "fig2" => Some(fig2::run()),
        "fig3" => Some(fig3::run()),
        "ex41" => Some(ex41::run()),
        "ex42" => Some(ex42::run()),
        "ex421" => Some(ex421::run()),
        "ex43" => Some(ex43::run()),
        "crossover" => Some(crossover::run()),
        "ips" => Some(ips::run()),
        "multimetric" => Some(multimetric::run()),
        "efficiency" => Some(efficiency::run()),
        "rfc2544" => Some(rfc2544::run()),
        "multihost" => Some(multihost::run()),
        "batching" => Some(batching::run()),
        "sensitivity" => Some(sensitivity::run()),
        "checklist" => Some(checklist::run()),
        "telemetry" => Some(telemetry::run()),
        "ablation-scaling" => Some(ablations::run_scaling()),
        "ablation-coverage" => Some(ablations::run_coverage()),
        "ablation-jfi" => Some(ablations::run_jfi()),
        "ablation-rss" => Some(rss::run()),
        "ablation-noise" => Some(noise::run()),
        "robustness-frontier" => Some(robustness::run_frontier()),
        "robustness-verdict" => Some(robustness::run_verdict()),
        "robustness-crossover" => Some(robustness::run_crossover()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_listed_id_runs() {
        for id in ALL_IDS {
            let r = run(id).unwrap_or_else(|| panic!("experiment {id} missing"));
            assert!(!r.render().is_empty());
        }
    }

    #[test]
    fn unknown_id_is_none() {
        assert!(run("nope").is_none());
    }

    #[test]
    fn every_report_is_provenance_stamped() {
        let clean = run("fig2").expect("known id");
        let p = clean.provenance.as_ref().expect("stamped");
        assert_eq!(p.scheduler, "wheel");
        assert_eq!(p.fault_digest, "none");
        let faulted = run("robustness-crossover").expect("known id");
        let pf = faulted.provenance.as_ref().expect("stamped");
        assert_eq!(pf.fault_digest, ladder_digest("robustness-crossover"));
        assert_ne!(pf.fault_digest, "none");
        // Config digests differ per id (the id is part of the config).
        assert_ne!(p.config_digest, pf.config_digest);
    }
}
