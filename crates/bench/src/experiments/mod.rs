//! One module per paper artifact; see DESIGN.md's experiment index.

pub mod ablations;
pub mod batching;
pub mod checklist;
pub mod crossover;
pub mod efficiency;
pub mod ex41;
pub mod ex42;
pub mod ex421;
pub mod ex43;
pub mod fig1;
pub mod fig2;
pub mod fig3;
pub mod ips;
pub mod multihost;
pub mod multimetric;
pub mod noise;
pub mod rfc2544;
pub mod robustness;
pub mod rss;
pub mod sensitivity;
pub mod table1;

use crate::report::ExperimentReport;

/// Every experiment id, in presentation order.
pub const ALL_IDS: [&str; 26] = [
    "table1",
    "fig1a",
    "fig1b",
    "fig2",
    "fig3",
    "ex41",
    "ex42",
    "ex421",
    "ex43",
    "crossover",
    "ips",
    "multimetric",
    "efficiency",
    "rfc2544",
    "multihost",
    "batching",
    "sensitivity",
    "checklist",
    "ablation-scaling",
    "ablation-coverage",
    "ablation-jfi",
    "ablation-rss",
    "ablation-noise",
    "robustness-frontier",
    "robustness-verdict",
    "robustness-crossover",
];

/// Runs one experiment by id.
pub fn run(id: &str) -> Option<ExperimentReport> {
    match id {
        "table1" => Some(table1::run()),
        "fig1a" => Some(fig1::run_fig1a()),
        "fig1b" => Some(fig1::run_fig1b()),
        "fig2" => Some(fig2::run()),
        "fig3" => Some(fig3::run()),
        "ex41" => Some(ex41::run()),
        "ex42" => Some(ex42::run()),
        "ex421" => Some(ex421::run()),
        "ex43" => Some(ex43::run()),
        "crossover" => Some(crossover::run()),
        "ips" => Some(ips::run()),
        "multimetric" => Some(multimetric::run()),
        "efficiency" => Some(efficiency::run()),
        "rfc2544" => Some(rfc2544::run()),
        "multihost" => Some(multihost::run()),
        "batching" => Some(batching::run()),
        "sensitivity" => Some(sensitivity::run()),
        "checklist" => Some(checklist::run()),
        "ablation-scaling" => Some(ablations::run_scaling()),
        "ablation-coverage" => Some(ablations::run_coverage()),
        "ablation-jfi" => Some(ablations::run_jfi()),
        "ablation-rss" => Some(rss::run()),
        "ablation-noise" => Some(noise::run()),
        "robustness-frontier" => Some(robustness::run_frontier()),
        "robustness-verdict" => Some(robustness::run_verdict()),
        "robustness-crossover" => Some(robustness::run_crossover()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_listed_id_runs() {
        for id in ALL_IDS {
            let r = run(id).unwrap_or_else(|| panic!("experiment {id} missing"));
            assert!(!r.render().is_empty());
        }
    }

    #[test]
    fn unknown_id_is_none() {
        assert!(run("nope").is_none());
    }
}
