//! Table 1: context-dependent vs context-independent cost metrics.
//!
//! Regenerated from the metric registry itself, plus a demonstration of
//! *why* the dependent row is dependent: the same deployment priced under
//! two released pricing models yields different TCOs.

use crate::report::ExperimentReport;
use apples_core::report::Csv;
use apples_metrics::catalog::{render_table1, table1};
use apples_metrics::pricing::{BomItem, PricingModel};
use apples_metrics::quantity::watts;

/// Runs the experiment.
pub fn run() -> ExperimentReport {
    let mut r = ExperimentReport::new("table1", "Table 1: cost-metric taxonomy");
    r.paper_line("Context dependent: TCO ($), hardware price ($), carbon footprint (CO2e)");
    r.paper_line(
        "Context independent: power (W), heat (BTU/h), die area (mm^2), CPU cores, FPGA LUTs, memory (MB)",
    );
    for line in render_table1().lines().skip(1) {
        r.measured_line(line.trim_start());
    }

    // Demonstrate context dependence mechanically: one deployment, two
    // (equally legitimate) pricing models, two different TCOs — while
    // power is identical by construction.
    let bom = vec![BomItem::new("xeon-server-16c", 1), BomItem::new("smartnic-100g", 1)];
    let power = watts(75.0);
    let campus = PricingModel::campus_testbed_2023();
    let hyper = PricingModel::hyperscaler_2023();
    let t_campus = campus.yearly_tco(&bom, power).expect("priced");
    let t_hyper = hyper.yearly_tco(&bom, power).expect("priced");
    r.measured_line(format!(
        "same deployment, two pricing models: {} vs {} per year (power identical at {power})",
        t_campus, t_hyper
    ));

    let mut csv = Csv::new(["class", "metric", "unit"]);
    for row in table1() {
        for ex in &row.examples {
            let (name, unit) = ex.rsplit_once(" (").unwrap_or((ex.as_str(), ")"));
            csv.row([
                row.class.to_string(),
                name.to_string(),
                unit.trim_end_matches(')').to_string(),
            ]);
        }
    }
    r.table("table1", csv);
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn taxonomy_matches_paper_rows() {
        let r = run();
        let text = r.render();
        assert!(text.contains("Context Dependent"));
        assert!(text.contains("Context Independent"));
        assert!(text.contains("power draw"));
        assert!(text.contains("total cost of ownership"));
    }

    #[test]
    fn tco_demo_shows_divergence() {
        let r = run();
        let line = r.measured.iter().find(|l| l.contains("two pricing models")).expect("demo line");
        assert!(line.contains("vs"));
    }

    #[test]
    fn csv_has_all_ten_metrics() {
        let r = run();
        let (_, csv) = &r.tables[0];
        assert_eq!(csv.len(), 10);
    }
}
