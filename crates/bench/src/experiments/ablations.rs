//! Ablations of the methodology's own design choices (DESIGN.md §4).

use crate::report::ExperimentReport;
use crate::scenarios::{baseline_host, measure, saturating_workload};
use apples_core::report::Csv;
use apples_core::scaling::{Amdahl, CostCoverage, IdealLinear, MeasuredCurve, ScalingModel};
use apples_core::{Evaluation, OperatingPoint, System};
use apples_metrics::cost::DeviceClass;
use apples_metrics::perf::PerfMetric;
use apples_metrics::quantity::{gbps, watts};
use apples_metrics::CostMetric;

fn tp(g: f64, w: f64) -> OperatingPoint {
    OperatingPoint::new(
        PerfMetric::throughput_bps().value(gbps(g)),
        CostMetric::power_draw().value(watts(w)),
    )
}

/// How generous is ideal scaling? Compare the cost the baseline needs to
/// reach a 4x performance target under ideal, Amdahl, and simulator-
/// measured scaling.
pub fn run_scaling() -> ExperimentReport {
    let mut r = ExperimentReport::new(
        "ablation-scaling",
        "ablation: generosity of ideal scaling vs realistic models",
    );
    r.paper_line("Principle 6 calls ideal scaling \"generous\"; this quantifies by how much");

    let base = tp(10.0, 50.0);
    let target = tp(40.0, 1e6); // match-perf anchor at 4x; cost axis moot
    let mut csv = Csv::new(["model", "param", "k_needed", "watts_at_4x"]);

    let (k, p) = IdealLinear.scale_to_match_perf(&base, &target).expect("reachable");
    csv.row([
        "ideal".to_owned(),
        "-".to_owned(),
        format!("{k:.3}"),
        format!("{:.1}", p.cost().quantity().value()),
    ]);
    let ideal_watts = p.cost().quantity().value();

    let mut worst: f64 = ideal_watts;
    for serial in [0.02, 0.05, 0.1, 0.15] {
        let m = Amdahl::new(serial);
        match m.scale_to_match_perf(&base, &target) {
            Ok((k, p)) => {
                let w = p.cost().quantity().value();
                worst = worst.max(w);
                csv.row([
                    "amdahl".to_owned(),
                    format!("s={serial}"),
                    format!("{k:.3}"),
                    format!("{:.1}", w),
                ]);
            }
            Err(e) => {
                csv.row([
                    "amdahl".to_owned(),
                    format!("s={serial}"),
                    "-".to_owned(),
                    format!("unreachable: {e}"),
                ]);
            }
        }
    }

    // Simulator-measured curve from the contended host (1..8 cores).
    let wl = saturating_workload(1);
    let m1 = measure(&baseline_host(1), &wl);
    let samples: Vec<(f64, f64, f64)> = [1u32, 2, 4, 8]
        .iter()
        .map(|&c| {
            let m = measure(&baseline_host(c), &wl);
            (f64::from(c), m.throughput_bps / m1.throughput_bps, m.watts / m1.watts)
        })
        .collect();
    let curve = MeasuredCurve::from_samples(samples);
    let sim_base = tp(10.0, 50.0);
    match curve.scale_to_match_perf(&sim_base, &target) {
        Ok((k, p)) => {
            let w = p.cost().quantity().value();
            worst = worst.max(w);
            csv.row([
                "measured(sim)".to_owned(),
                "contended cores".to_owned(),
                format!("{k:.3}"),
                format!("{:.1}", w),
            ]);
            r.measured_line(format!(
                "reaching 4x costs {ideal_watts:.0} W under ideal scaling but up to {worst:.0} W \
                 under realistic models ({:.1}% optimism)",
                (worst / ideal_watts - 1.0) * 100.0
            ));
        }
        Err(e) => {
            r.measured_line(format!(
                "the simulator-measured curve cannot reach 4x at all ({e}); ideal scaling's \
                 {ideal_watts:.0} W bound is unboundedly generous there"
            ));
        }
    }
    r.measured_line(
        "claims that survive the generous bound are safe; claims that only hold under \
         realistic baselines are not licensed by principle 6"
            .to_owned(),
    );
    r.measured_line(
        "note: the simulator-measured curve can undercut 'ideal' because it scales cores \
         *within* one chassis (marginal watts only), whereas ideal scaling replicates whole \
         units — the same cost-coverage distinction \u{a7}4.2.1 warns about"
            .to_owned(),
    );
    r.table("scaling-generosity", csv);
    r
}

/// The §4.2.1 cost-coverage pitfall: scaling a 1-of-8-core baseline at
/// whole-server cost vs at its marginal cost.
pub fn run_coverage() -> ExperimentReport {
    let mut r = ExperimentReport::new(
        "ablation-coverage",
        "ablation: cost coverage when scaling (\u{a7}4.2.1 pitfall 2)",
    );
    r.paper_line("\"If the baseline system originally does not use all CPU cores in the host, linearly scaling it using the cost of the entire server is no longer generous\"");

    let proposed =
        System::new("accelerated", vec![DeviceClass::Cpu, DeviceClass::SmartNic], tp(40.0, 90.0));
    // Baseline: 10 Gbps on 1 of 8 cores. Whole-server cost: 56 W.
    // Marginal (1-core) cost: ~26 W.
    let whole = System::new("base@server-cost", vec![DeviceClass::Cpu], tp(10.0, 56.0));
    let marginal = System::new("base@marginal-cost", vec![DeviceClass::Cpu], tp(10.0, 26.0));

    // Case 1: whole-server cost + partial use -> the guard refuses.
    let guarded = Evaluation::new(proposed.clone(), whole)
        .with_baseline_scaling(&IdealLinear)
        .with_baseline_cost_coverage(CostCoverage::PartialHost { used: 1.0, paid_for: 8.0 })
        .run();
    r.measured_line(format!("whole-server cost, 1/8 cores used: {}", guarded.verdict));

    // Case 2: marginal cost, full coverage of what is used -> comparable.
    let ok = Evaluation::new(proposed, marginal).with_baseline_scaling(&IdealLinear).run();
    r.measured_line(format!("marginal cost: {}", ok.verdict));
    r.measured_line(
        "the guard prevents the trap where padding the baseline's cost with unused cores \
         makes the proposed system look better than it is"
            .to_owned(),
    );
    r
}

/// Jain's fairness index does not scale (§4.3): replicate a system and
/// watch throughput scale while JFI stays put.
pub fn run_jfi() -> ExperimentReport {
    let mut r = ExperimentReport::new("ablation-jfi", "ablation: JFI is a non-scalable metric");
    r.paper_line(
        "\"some metrics do not scale when we scale the system, e.g., latency and JFI\" (\u{a7}4.3)",
    );

    let wl = saturating_workload(5); // overload: per-flow service is contended
    let mut csv = Csv::new(["cores", "gbps", "jfi", "mean_latency_us"]);
    let mut jfis = Vec::new();
    let mut gbps_series = Vec::new();
    for cores in [1u32, 2, 4, 8] {
        let m = measure(&baseline_host(cores), &wl);
        let j = m.jain_index.unwrap_or(0.0);
        jfis.push(j);
        gbps_series.push(m.throughput_bps / 1e9);
        csv.row([
            cores.to_string(),
            format!("{:.3}", m.throughput_bps / 1e9),
            format!("{j:.4}"),
            format!("{:.2}", m.mean_latency_ns / 1000.0),
        ]);
    }
    let tput_gain = gbps_series.last().unwrap() / gbps_series.first().unwrap();
    let jfi_gain = jfis.last().unwrap() / jfis.first().unwrap();
    r.measured_line(format!(
        "1 -> 8 cores: throughput x{tput_gain:.2}, JFI x{jfi_gain:.3} (throughput scales, fairness does not)"
    ));
    assert!(tput_gain > 3.0, "throughput should scale: x{tput_gain}");
    assert!(jfi_gain < 1.3 && jfi_gain > 0.7, "JFI should not scale: x{jfi_gain}");
    r.table("jfi-vs-cores", csv);
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling_ablation_quantifies_generosity() {
        let text = run_scaling().render();
        assert!(text.contains("ideal"), "{text}");
        assert!(text.contains("amdahl"), "{text}");
    }

    #[test]
    fn coverage_ablation_shows_guard_and_fix() {
        let text = run_coverage().render();
        assert!(text.contains("not generous"), "{text}");
        assert!(text.contains("marginal cost:"), "{text}");
    }

    #[test]
    fn jfi_ablation_shows_flat_fairness() {
        let text = run_jfi().render();
        assert!(text.contains("fairness does not"), "{text}");
    }
}
