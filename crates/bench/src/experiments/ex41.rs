//! §4.1's two quoted claims, checked as operating-regime statements
//! against the paper's own numbers (Principle 4).

use crate::report::ExperimentReport;
use apples_core::regime::{detect_regime, unidimensional_claim, Regime, Tolerance};
use apples_core::OperatingPoint;
use apples_metrics::perf::PerfMetric;
use apples_metrics::quantity::{cores, gbps};
use apples_metrics::CostMetric;

fn point(g: f64, c: f64) -> OperatingPoint {
    OperatingPoint::new(
        PerfMetric::throughput_bps().value(gbps(g)),
        CostMetric::cpu_cores().value(cores(c)),
    )
}

/// Runs the experiment.
pub fn run() -> ExperimentReport {
    let mut r = ExperimentReport::new("ex41", "\u{a7}4.1: same-regime claims are meaningful");
    r.paper_line("claim 1: \"improves throughput with a single core from 10 Gbps to 15 Gbps\"");
    r.paper_line(
        "claim 2: \"reduces the number of cores required to saturate a 100 Gbps link from 8 to 4\"",
    );

    let tol = Tolerance::exact();

    // Claim 1: both systems cost one core.
    let old1 = point(10.0, 1.0);
    let new1 = point(15.0, 1.0);
    let regime1 = detect_regime(&new1, &old1, tol);
    let claim1 = unidimensional_claim(&new1, &old1, tol).expect("same regime");
    r.measured_line(format!("claim 1 regime: {regime1}; claim: {claim1}"));
    assert_eq!(regime1, Regime::SameCost);

    // Claim 2: both systems deliver 100 Gbps.
    let old2 = point(100.0, 8.0);
    let new2 = point(100.0, 4.0);
    let regime2 = detect_regime(&new2, &old2, tol);
    let claim2 = unidimensional_claim(&new2, &old2, tol).expect("same regime");
    r.measured_line(format!("claim 2 regime: {regime2}; claim: {claim2}"));
    assert_eq!(regime2, Regime::SamePerf);

    // And the contrast: the SmartNIC claim from the introduction is NOT
    // same-regime, which is the paper's whole point.
    let sw = point(10.0, 4.0); // software system, 4 cores
    let accel = point(20.0, 4.0); // "2x faster" — but it also added a SmartNIC
                                  // On the (throughput, cores) axes the accelerator is invisible: the
                                  // metric fails end-to-end coverage, so this "same regime" finding is
                                  // misleading — exactly the failure Principle 3 exists to catch.
    let regime3 = detect_regime(&accel, &sw, tol);
    r.measured_line(format!(
        "intro's SmartNIC claim on a cores-only axis looks like '{regime3}' — but the cost \
         metric misses the SmartNIC (principle 3 violation; see the ex42 evaluation, which \
         flags it)"
    ));
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_claims_resolve_to_their_regimes() {
        let r = run();
        let text = r.render();
        assert!(text.contains("same cost regime"));
        assert!(text.contains("same performance regime"));
        assert!(text.contains("1.50x performance"));
        assert!(text.contains("0.50x cost"));
    }

    #[test]
    fn misleading_claim_is_called_out() {
        let text = run().render();
        assert!(text.contains("principle 3 violation"));
    }
}
