//! Extension experiment: the RFC 2544 frame-size sweep, with cost.
//!
//! §2: "when evaluating network functions it is common to report both
//! packets per second when using minimum sized packets and data rates
//! when using a mixture of packets" — the community's RFC 2544 habit.
//! This experiment runs the standard seven frame sizes through the
//! baseline and the SmartNIC system and reports pps, Gbps, *and watts*
//! per size: the sweep the paper says evaluations should have been
//! printing all along.

use crate::report::ExperimentReport;
use crate::scenarios::{baseline_host, smartnic_system, to_gbps};
use apples_core::report::Csv;
use apples_workload::sizes::RFC2544_SIZES;
use apples_workload::{ArrivalProcess, PacketSizeDist, WorkloadSpec};

const RUN_NS: u64 = 10_000_000;
const WARMUP_NS: u64 = 1_000_000;

/// Runs the experiment.
pub fn run() -> ExperimentReport {
    let mut r = ExperimentReport::new(
        "rfc2544",
        "extension: RFC 2544 frame-size sweep with end-to-end power",
    );
    r.paper_line("\u{a7}2: report pps at minimum frame size and data rates across the size sweep — here with the cost column the paper adds");

    let mut csv = Csv::new(["frame_bytes", "system", "mpps", "gbps", "watts", "mpps_per_watt"]);
    let mut min_size_summary = Vec::new();

    // 7 sizes x 2 systems = 14 independent simulations: run the whole
    // grid on the pool, then emit rows in sweep order.
    let grid: Vec<(u32, bool)> =
        RFC2544_SIZES.iter().flat_map(|&s| [(s, true), (s, false)]).collect();
    let measurements = crate::pool::Pool::new().map(grid, |(size, is_baseline)| {
        // Saturating offered load for every size: 64 B needs the pps.
        let rate_pps = 120e9 / (f64::from(size + 20) * 8.0);
        let wl = WorkloadSpec {
            sizes: PacketSizeDist::Fixed(size),
            arrivals: ArrivalProcess::Cbr { rate_pps },
            flows: 64,
            zipf_s: 1.0,
            seed: 51,
        };
        let d = if is_baseline { baseline_host(1) } else { smartnic_system() };
        (size, d.run(&wl, RUN_NS, WARMUP_NS))
    });
    {
        for (size, m) in measurements {
            let mpps = m.throughput_pps / 1e6;
            csv.row([
                size.to_string(),
                m.name.clone(),
                format!("{mpps:.4}"),
                format!("{:.4}", to_gbps(m.throughput_bps)),
                format!("{:.2}", m.watts),
                format!("{:.5}", mpps / m.watts),
            ]);
            if size == 64 {
                min_size_summary.push(format!(
                    "{}: {:.3} Mpps at {:.1} W ({:.4} Mpps/W)",
                    m.name,
                    mpps,
                    m.watts,
                    mpps / m.watts
                ));
            }
        }
    }

    r.measured_line("64 B (minimum frame) packet rates:".to_owned());
    for line in min_size_summary {
        r.measured_line(format!("  {line}"));
    }
    r.measured_line(
        "per-packet work dominates software forwarding, so small frames crush the host's \
         pps while the accelerated datapath holds its rate — the classic RFC 2544 shape, \
         now with the watts column that makes the comparison fair"
            .to_owned(),
    );
    r.table("rfc2544-sweep", csv);
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_all_seven_sizes_for_both_systems() {
        let r = run();
        let (_, csv) = &r.tables[0];
        assert_eq!(csv.len(), 7 * 2);
    }

    #[test]
    fn minimum_frame_rates_are_reported() {
        let text = run().render();
        assert!(text.contains("64 B (minimum frame)"), "{text}");
        assert!(text.contains("Mpps/W"), "{text}");
    }
}
