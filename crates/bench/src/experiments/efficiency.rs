//! Extension experiment: performance-per-watt vs the paper's geometry.
//!
//! Perf-per-watt rankings are ubiquitous; this experiment shows exactly
//! when they coincide with the paper's methodology (they *are* the
//! Principle 6 ideal-scaling comparison) and when they mislead (against
//! realistic baselines, and across incomparable regimes).

use crate::report::ExperimentReport;
use crate::scenarios::{
    baseline_host, measure, saturating_workload, smartnic_system, switch_system, to_gbps,
};
use apples_core::dominance::Relation;
use apples_core::efficiency::{ideal_verdict_from_efficiency, perf_per_cost, rank_by_efficiency};
use apples_core::report::Csv;
use apples_core::scaling::IdealLinear;
use apples_core::{relate, Evaluation};

/// Runs the experiment.
pub fn run() -> ExperimentReport {
    let mut r = ExperimentReport::new(
        "efficiency",
        "extension: perf-per-watt rankings vs the comparison-region geometry",
    );
    r.paper_line("(implicit in \u{a7}4.2.1: ideal linear scaling preserves perf/cost, so prevailing against the generous bound = winning on perf-per-watt; anything weaker does not rank)");

    let wl = saturating_workload(41);
    let systems = [
        measure(&baseline_host(1), &wl),
        measure(&baseline_host(8), &wl),
        measure(&smartnic_system(), &wl),
        measure(&switch_system(8), &wl),
    ];
    let points: Vec<_> = systems.iter().map(|m| m.throughput_power_point()).collect();

    let mut csv = Csv::new(["system", "gbps", "watts", "gbps_per_watt"]);
    for (m, p) in systems.iter().zip(&points) {
        let eff = perf_per_cost(p).expect("throughput axis") / 1e9;
        csv.row([
            m.name.clone(),
            format!("{:.3}", to_gbps(m.throughput_bps)),
            format!("{:.1}", m.watts),
            format!("{eff:.4}"),
        ]);
    }

    let ranking = rank_by_efficiency(&points);
    r.measured_line(format!(
        "perf-per-watt ranking: {}",
        ranking.iter().map(|&i| systems[i].name.as_str()).collect::<Vec<_>>().join(" > ")
    ));

    // Fact 1: the efficiency order predicts the ideal-scaling verdict
    // for every pair.
    let mut agreements = 0;
    let mut pairs = 0;
    for i in 0..points.len() {
        for j in 0..points.len() {
            if i == j {
                continue;
            }
            pairs += 1;
            let predicted = ideal_verdict_from_efficiency(&points[i], &points[j]).expect("defined");
            let actual = Evaluation::new(systems[i].as_system(), systems[j].as_system())
                .with_baseline_scaling(&IdealLinear)
                .run();
            let actually_favors = actual.verdict.favors_proposed();
            let predicted_favors = predicted == Relation::Dominates;
            if actually_favors == predicted_favors {
                agreements += 1;
            }
        }
    }
    r.measured_line(format!(
        "ideal-scaling verdicts predicted by the efficiency order: {agreements}/{pairs} pairs"
    ));
    assert_eq!(agreements, pairs, "efficiency order must match ideal-scaling verdicts");

    // Fact 2: efficiency alone says nothing about raw dominance across
    // regimes — find a pair where the more 'efficient' system is
    // incomparable as measured.
    let mut example = None;
    for &i in &ranking {
        for &j in &ranking {
            if i != j
                && perf_per_cost(&points[i]) > perf_per_cost(&points[j])
                && relate(&points[i], &points[j]) == Relation::Incomparable
            {
                example = Some((i, j));
                break;
            }
        }
        if example.is_some() {
            break;
        }
    }
    match example {
        Some((i, j)) => r.measured_line(format!(
            "but efficiency is not dominance: {} beats {} on perf-per-watt while the two are \
             incomparable as measured — the claim only holds *with* the ideal-scaling caveat",
            systems[i].name, systems[j].name
        )),
        None => r.measured_line(
            "every pair here happens to be comparable; efficiency and dominance coincide"
                .to_owned(),
        ),
    };
    r.table("efficiency-ranking", csv);
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn efficiency_predicts_all_ideal_verdicts() {
        let text = run().render();
        assert!(text.contains("12/12 pairs"), "{text}");
    }

    #[test]
    fn ranking_is_reported() {
        let text = run().render();
        assert!(text.contains("perf-per-watt ranking:"), "{text}");
    }
}
