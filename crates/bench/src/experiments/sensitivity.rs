//! Extension experiment: how robust are the verdicts to the synthetic
//! device constants?
//!
//! A simulation-backed reproduction owes its readers this question: the
//! SmartNIC's power envelope is a synthetic constant, so we sweep it
//! (×0.5 … ×4) and re-run the §4.2 comparison at every point. The
//! output is the *break-even envelope*: the verdict holds until the
//! SmartNIC burns so much power that even the generous comparison flips
//! — and readers can check their own hardware against that line rather
//! than trusting our constant.

use crate::report::ExperimentReport;
use crate::scenarios::{
    baseline_host, firewall_chain, measure, saturating_workload, stateful_tail_chain, to_gbps,
    RUN_NS, WARMUP_NS,
};
use apples_core::report::Csv;
use apples_core::scaling::IdealLinear;
use apples_core::Evaluation;
use apples_power::devices::DeviceSpec;
use apples_simnet::engine::StageConfig;
use apples_simnet::service::NfService;
use apples_simnet::system::{DeploymentBuilder, UtilSource};

/// The §4.2 SmartNIC system with its NIC's power envelope scaled.
fn smartnic_scaled(power_factor: f64) -> apples_simnet::system::Deployment {
    DeploymentBuilder::new(format!("smartnic-x{power_factor}"))
        .stage(|| {
            StageConfig::new(
                "smartnic-cores",
                4,
                2048,
                Box::new(NfService::smartnic_core(firewall_chain())),
            )
        })
        .stage(|| {
            StageConfig::new(
                "host-cores",
                1,
                1024,
                Box::new(NfService::host_core(stateful_tail_chain())),
            )
        })
        .power(DeviceSpec::host_chassis(), 1, UtilSource::Fixed(1.0))
        .power(DeviceSpec::xeon_core(), 1, UtilSource::Stage(1))
        .power(DeviceSpec::smartnic_100g().with_power_scaled(power_factor), 1, UtilSource::Stage(0))
        .build()
}

/// Runs the experiment.
pub fn run() -> ExperimentReport {
    let mut r = ExperimentReport::new(
        "sensitivity",
        "extension: verdict robustness to the synthetic SmartNIC power constant",
    );
    r.paper_line("(simulation-substitution hygiene: report the break-even constants, not just the verdict at our pick)");

    let wl = saturating_workload(91);
    let base = measure(&baseline_host(1), &wl);
    r.measured_line(format!(
        "baseline: {:.2} Gbps / {:.1} W; SmartNIC envelope swept below (x1.0 = the catalog's 25-40 W)",
        to_gbps(base.throughput_bps),
        base.watts
    ));

    let mut csv = Csv::new(["power_factor", "nic_gbps", "nic_watts", "favors_proposed"]);
    let mut break_even = None;
    // The sweep points are independent simulations: fan them out on the
    // pool, then fold the break-even detection serially in sweep order.
    let sweep = crate::pool::Pool::new().map(vec![0.5, 1.0, 1.5, 2.0, 3.0, 4.0], |factor| {
        let nic = smartnic_scaled(factor).run(&wl, RUN_NS, WARMUP_NS);
        let verdict = Evaluation::new(nic.as_system(), base.as_system())
            .with_baseline_scaling(&IdealLinear)
            .run()
            .verdict;
        (factor, nic, verdict)
    });
    for (factor, nic, verdict) in sweep {
        let favors = verdict.favors_proposed();
        if !favors && break_even.is_none() {
            break_even = Some(factor);
        }
        csv.row([
            format!("{factor}"),
            format!("{:.3}", to_gbps(nic.throughput_bps)),
            format!("{:.2}", nic.watts),
            favors.to_string(),
        ]);
    }
    match break_even {
        Some(f) => {
            r.measured_line(format!(
                "the \u{a7}4.2 conclusion survives until the SmartNIC draws ~x{f} the catalog \
                 envelope; below that, the verdict is insensitive to the constant"
            ));
        }
        None => {
            r.measured_line(
                "the conclusion survives the entire x0.5–x4 sweep: it does not hinge on the \
                 synthetic power constant at all"
                    .to_owned(),
            );
        }
    }
    r.table("sensitivity-sweep", csv);
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_reports_verdict_per_factor() {
        let rep = run();
        let (_, csv) = &rep.tables[0];
        assert_eq!(csv.len(), 6);
        let text = rep.render();
        // At the catalog envelope the conclusion must hold.
        assert!(text.contains("1,"), "{text}");
    }

    #[test]
    fn catalog_factor_favors_the_proposal() {
        let wl = saturating_workload(91);
        let base = measure(&baseline_host(1), &wl);
        let nic = smartnic_scaled(1.0).run(&wl, RUN_NS, WARMUP_NS);
        let v = Evaluation::new(nic.as_system(), base.as_system())
            .with_baseline_scaling(&IdealLinear)
            .run()
            .verdict;
        assert!(v.favors_proposed(), "{v}");
    }
}
