//! Robustness suite: do the paper's worked-example conclusions survive
//! deterministic fault injection?
//!
//! A fair comparison holds the workload *and the environment* fixed; a
//! robust conclusion additionally survives when the environment degrades
//! the same way for every contender. These experiments re-run the §4
//! worked examples under the shared severity ladder
//! ([`crate::scenarios::SEVERITY_LADDER`]) — packet drops, corruption,
//! transient device slowdowns, and outages from
//! `apples_simnet::FaultSpec::at_severity`, plus severity-scaled arrival
//! overload bursts — and report how the Pareto frontier, the
//! fair-comparison verdicts, and the efficiency crossover move. Every
//! faulted run replays exactly from `(seed, FaultPlan)`, so the whole
//! suite is as deterministic as the clean experiments it perturbs.

use crate::report::ExperimentReport;
use crate::scenarios::{
    baseline_host, faulted, measure, measure_quick, perturbed_workload, saturating_workload,
    severity_ladder, smartnic_system, switch_system, to_gbps,
};
use apples_core::report::Csv;
use apples_core::scaling::IdealLinear;
use apples_core::{bootstrap_mean_ci, pareto_frontier, Evaluation};
use apples_simnet::system::Measurement;

/// Bootstrap resamples for replication confidence intervals.
const RESAMPLES: usize = 300;
/// Seed for the (deterministic) bootstrap resampling stream.
const BOOTSTRAP_SEED: u64 = 0xB007;

/// The three worked-example contenders: label plus a (Send) constructor,
/// so pool workers can build each deployment on their own thread.
type Build = fn() -> apples_simnet::system::Deployment;
const CONTENDERS: [(&str, Build); 3] = [
    ("base-2c", || baseline_host(2)),
    ("smartnic", smartnic_system),
    ("switch-2c", || switch_system(2)),
];

/// Frontier membership under faults: which systems stay Pareto-optimal
/// on (throughput, watts) as the severity ladder climbs.
pub fn run_frontier() -> ExperimentReport {
    let mut r = ExperimentReport::new(
        "robustness-frontier",
        "robustness: Pareto frontier membership across the fault-severity ladder",
    );
    r.paper_line("(extension — §4's comparisons re-run under deterministic fault injection: a conclusion that only holds on a fault-free network is an apples-to-oranges claim about real deployments)");

    let mut csv = Csv::new(["severity", "system", "gbps", "watts", "fault_drops", "on_frontier"]);
    let mut clean_members: Vec<String> = Vec::new();
    let mut shifted = Vec::new();
    // 4 severities x 3 systems; each severity's trio runs on the pool.
    let rows = crate::pool::Pool::new().map(severity_ladder("robustness-frontier"), |(name, s)| {
        let runs = crate::pool::Pool::new().run::<(&'static str, Measurement), _>(
            CONTENDERS
                .into_iter()
                .map(|(label, build)| {
                    Box::new(move || {
                        (label, measure(&faulted(build(), s), &saturating_workload(1)))
                    })
                        as Box<dyn FnOnce() -> (&'static str, Measurement) + Send>
                })
                .collect(),
        );
        (name, s, runs)
    });
    for (name, _s, runs) in rows {
        let points: Vec<_> = runs.iter().map(|(_, m)| m.throughput_power_point()).collect();
        let members = pareto_frontier(&points);
        let member_names: Vec<String> = members.iter().map(|&i| runs[i].0.to_owned()).collect();
        for (i, (label, m)) in runs.iter().enumerate() {
            csv.row([
                name.clone(),
                (*label).to_owned(),
                format!("{:.3}", to_gbps(m.throughput_bps)),
                format!("{:.2}", m.watts),
                format!("{}", m.fault_drops + m.injected_drops),
                format!("{}", members.contains(&i)),
            ]);
        }
        if name == "none" {
            clean_members = member_names;
        } else if member_names != clean_members {
            shifted.push(name);
        }
    }
    r.measured_line(format!("clean frontier: {}", clean_members.join(", ")));
    if shifted.is_empty() {
        r.measured_line(
            "frontier membership is fault-invariant across the ladder: every contender \
             degrades proportionally, so the clean comparison generalizes"
                .to_owned(),
        );
    } else {
        r.measured_line(format!(
            "frontier membership shifts at severity {}: the clean ranking does not survive \
             degraded operation — report both or qualify the claim",
            shifted.join(", ")
        ));
    }
    r.table("frontier-vs-severity", csv);
    r
}

/// Verdict stability under faults, with replications: the §4.2
/// smartnic-vs-baseline verdict re-judged per severity over several
/// seeds, with percentile-bootstrap CIs on the throughput samples.
pub fn run_verdict() -> ExperimentReport {
    run_verdict_with(&[201, 202, 203, 204, 205])
}

/// [`run_verdict`] with an explicit replication seed list (the bench
/// harness trims it in `--quick` mode).
pub fn run_verdict_with(seeds: &[u64]) -> ExperimentReport {
    let mut r = ExperimentReport::new(
        "robustness-verdict",
        "robustness: fair-comparison verdict stability under faults, with replications",
    );
    r.paper_line("(extension — Principle 4's verdict re-judged per fault severity; replications + bootstrap CIs say whether a flip is signal or seed noise)");

    let mut csv =
        Csv::new(["severity", "replications", "base_gbps_ci", "nic_gbps_ci", "favorable_verdicts"]);
    let mut flips = Vec::new();
    // The shared ladder minus the "light" rung: with replications the
    // verdict sweep is the most expensive robustness experiment, and
    // light faults never flip it.
    let severities: Vec<(String, f64)> = severity_ladder("robustness-verdict")
        .into_iter()
        .filter(|(name, _)| name != "light")
        .collect();
    let mut clean_favors = None;
    // 3 severities x |seeds| replications x 2 systems, short windows.
    let rows = crate::pool::Pool::new().map(severities, |(name, s)| {
        let reps = crate::pool::Pool::new().map(seeds.to_vec(), |seed| {
            let wl = perturbed_workload(120.0, seed, s);
            let base = measure_quick(&faulted(baseline_host(2), s), &wl);
            let nic = measure_quick(&faulted(smartnic_system(), s), &wl);
            let favors = Evaluation::new(nic.as_system(), base.as_system())
                .with_baseline_scaling(&IdealLinear)
                .run()
                .verdict
                .favors_proposed();
            (to_gbps(base.throughput_bps), to_gbps(nic.throughput_bps), favors)
        });
        (name, reps)
    });
    for (name, reps) in rows {
        let base_gbps: Vec<f64> = reps.iter().map(|r| r.0).collect();
        let nic_gbps: Vec<f64> = reps.iter().map(|r| r.1).collect();
        let favorable = reps.iter().filter(|r| r.2).count();
        let majority = favorable * 2 > reps.len();
        let base_ci = bootstrap_mean_ci(&base_gbps, RESAMPLES, BOOTSTRAP_SEED);
        let nic_ci = bootstrap_mean_ci(&nic_gbps, RESAMPLES, BOOTSTRAP_SEED);
        csv.row([
            name.clone(),
            format!("{}", reps.len()),
            format!("{base_ci}"),
            format!("{nic_ci}"),
            format!("{favorable}/{}", reps.len()),
        ]);
        match clean_favors {
            None => clean_favors = Some(majority),
            Some(clean) if clean != majority => flips.push(name.clone()),
            Some(_) => {}
        }
        r.measured_line(format!(
            "severity {name}: base {base_ci} Gbps, smartnic {nic_ci} Gbps, \
             verdict favors smartnic in {favorable}/{} replications",
            reps.len()
        ));
    }
    if flips.is_empty() {
        r.measured_line(
            "the majority verdict is stable across the ladder — the §4.2 conclusion is \
             robust to the injected fault mix"
                .to_owned(),
        );
    } else {
        r.measured_line(format!("majority verdict flips at severity {}", flips.join(", ")));
    }
    r.table("verdict-vs-severity", csv);
    r
}

/// Crossover shift under faults: does the load at which the smartnic
/// design first defensibly wins move when the environment degrades?
pub fn run_crossover() -> ExperimentReport {
    let mut r = ExperimentReport::new(
        "robustness-crossover",
        "robustness: efficiency-crossover load under moderate faults",
    );
    r.paper_line("(extension — the crossover experiment's operating-regime boundary re-measured in a degraded environment)");

    let loads = [2.0, 5.0, 10.0, 20.0];
    let severity = 0.5;
    let mut csv =
        Csv::new(["offered_gbps", "clean_nic_wins", "faulted_nic_wins", "faulted_fault_drops"]);
    let mut first_clean = None;
    let mut first_faulted = None;
    // 4 loads x 2 conditions x 2 systems.
    let points = crate::pool::Pool::new().map(loads.to_vec(), |load| {
        let judge = |s: f64| {
            let wl = perturbed_workload(load, 11, s);
            let base = measure_quick(&faulted(baseline_host(2), s), &wl);
            let nic = measure_quick(&faulted(smartnic_system(), s), &wl);
            let favors = Evaluation::new(nic.as_system(), base.as_system())
                .with_baseline_scaling(&IdealLinear)
                .run()
                .verdict
                .favors_proposed();
            (favors, nic.fault_drops + nic.injected_drops)
        };
        let (clean_wins, _) = judge(0.0);
        let (faulted_wins, drops) = judge(severity);
        (load, clean_wins, faulted_wins, drops)
    });
    for (load, clean_wins, faulted_wins, drops) in points {
        if clean_wins && first_clean.is_none() {
            first_clean = Some(load);
        }
        if faulted_wins && first_faulted.is_none() {
            first_faulted = Some(load);
        }
        csv.row([
            format!("{load}"),
            format!("{clean_wins}"),
            format!("{faulted_wins}"),
            format!("{drops}"),
        ]);
    }
    let fmt = |l: Option<f64>| l.map_or("never".to_owned(), |l| format!("{l} Gbps"));
    r.measured_line(format!("clean crossover: smartnic first wins at {}", fmt(first_clean)));
    r.measured_line(format!(
        "moderate-fault crossover: smartnic first wins at {}",
        fmt(first_faulted)
    ));
    r.measured_line(if first_clean == first_faulted {
        "the crossover load is unchanged under moderate faults — the regime boundary is \
         a property of the designs, not of a pristine network"
            .to_owned()
    } else {
        "the crossover load moves under faults: the operating-regime advice must name the \
         environment it was measured in"
            .to_owned()
    });
    r.table("crossover-vs-faults", csv);
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frontier_report_covers_the_ladder() {
        let r = run_frontier();
        let (_, csv) = &r.tables[0];
        let rungs = severity_ladder("robustness-frontier").len();
        assert_eq!(csv.len(), rungs * 3, "4 severities x 3 systems");
        let text = r.render();
        assert!(text.contains("clean frontier"), "{text}");
    }

    #[test]
    fn frontier_reports_are_deterministic() {
        assert_eq!(run_frontier().render(), run_frontier().render());
    }

    #[test]
    fn verdict_report_carries_cis_and_replication_counts() {
        let r = run_verdict_with(&[201, 202, 203]);
        let text = r.render();
        assert!(text.contains("300 resamples"), "{text}");
        assert!(text.contains("/3 replications"), "{text}");
    }

    #[test]
    fn crossover_report_names_both_conditions() {
        let text = run_crossover().render();
        assert!(text.contains("clean crossover"), "{text}");
        assert!(text.contains("moderate-fault crossover"), "{text}");
    }
}
