//! Figure 2: the comparison region of a proposed system A.
//!
//! We sweep a grid of candidate baselines across the performance–cost
//! plane around A and classify each against A. The two quadrants where a
//! relation exists (A ≻ B below-right, B ≻ A above-left) form A's
//! comparison region; the other two are the paper's "?" quadrants.

use crate::report::ExperimentReport;
use apples_core::dominance::{relate, Relation};
use apples_core::report::Csv;
use apples_core::OperatingPoint;
use apples_metrics::perf::PerfMetric;
use apples_metrics::quantity::{gbps, watts};
use apples_metrics::CostMetric;

fn tp(g: f64, w: f64) -> OperatingPoint {
    OperatingPoint::new(
        PerfMetric::throughput_bps().value(gbps(g)),
        CostMetric::power_draw().value(watts(w)),
    )
}

/// Runs the experiment.
pub fn run() -> ExperimentReport {
    let mut r = ExperimentReport::new("fig2", "Figure 2: comparison region of system A");
    r.paper_line("Region = designs that dominate A or are dominated by A; the perf-better/cost-worse and perf-worse/cost-better quadrants admit no objective claim");

    let a = tp(50.0, 100.0);
    let mut csv = Csv::new(["gbps", "watts", "relation"]);
    let mut counts = [0usize; 4]; // dominates A, dominated by A, equivalent, incomparable
    let mut ascii = String::new();

    // 21x21 grid: perf 0..100 Gbps, cost 0..200 W.
    for pi in (0..21).rev() {
        let g = pi as f64 * 5.0;
        for ci in 0..21 {
            let w = ci as f64 * 10.0;
            let b = tp(g, w);
            let rel = relate(&b, &a);
            let (sym, slot) = match rel {
                Relation::Dominates => ('+', 0),   // B dominates A
                Relation::DominatedBy => ('-', 1), // B dominated by A
                Relation::Equivalent => ('A', 2),
                Relation::Incomparable => ('?', 3),
            };
            counts[slot] += 1;
            ascii.push(sym);
            csv.row([format!("{g}"), format!("{w}"), format!("{rel:?}")]);
        }
        ascii.push('\n');
    }

    r.measured_line("anchor A = 50 Gbps at 100 W; 21x21 grid of candidates");
    r.measured_line(format!(
        "dominating A: {}, dominated by A: {}, equivalent: {}, incomparable (outside region): {}",
        counts[0], counts[1], counts[2], counts[3]
    ));
    r.measured_line("map (+ dominates A, - dominated, ? outside region, A anchor):".to_owned());
    for line in ascii.lines() {
        r.measured_line(format!("  {line}"));
    }
    r.table("fig2-grid", csv);
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_has_all_four_classes() {
        let r = run();
        let (_, csv) = &r.tables[0];
        assert_eq!(csv.len(), 21 * 21);
        let text = r.render();
        assert!(text.contains("Dominates"));
        assert!(text.contains("Incomparable"));
    }

    #[test]
    fn region_counts_match_geometry() {
        // On a 21x21 grid with A at the center of both axes, each strict
        // quadrant has 10x10 = 100 points; the axis lines through A are
        // shared by the comparable classes.
        let r = run();
        let line = r.measured.iter().find(|l| l.contains("dominating A")).unwrap();
        // dominating = 10x10 quadrant + 10 on each half-axis = 120.
        assert!(line.contains("dominating A: 120"), "{line}");
        assert!(line.contains("incomparable (outside region): 200"), "{line}");
    }
}
