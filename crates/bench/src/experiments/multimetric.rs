//! Extension experiment: the same comparison under several cost metrics
//! at once (§3.4 "any cost metric that meets our three requirements can
//! be substituted"), including one that *fails* the requirements so the
//! diagnostics fire.

use crate::report::ExperimentReport;
use crate::scenarios::{baseline_host, measure, saturating_workload, smartnic_system};
use apples_core::multi::{evaluate_multi, MultiPoint};
use apples_core::regime::Tolerance;
use apples_core::report::Csv;
use apples_metrics::cost::{validate_cost_metric, CostMetric};
use apples_metrics::perf::PerfMetric;
use apples_metrics::quantity::{bps, rack_units, watts, watts_to_btu_per_hour};

/// Runs the experiment.
pub fn run() -> ExperimentReport {
    let mut r = ExperimentReport::new(
        "multimetric",
        "extension: one comparison under power, heat, and rack space simultaneously",
    );
    r.paper_line("\u{a7}3.4: power is the running example, but any metric satisfying principles 1-3 substitutes; report them side by side");

    let wl = saturating_workload(31);
    let base = measure(&baseline_host(1), &wl);
    let nic = measure(&smartnic_system(), &wl);

    let perf = PerfMetric::throughput_bps();
    let mk = |m: &apples_simnet::system::Measurement, rack: f64| {
        MultiPoint::new(
            perf.value(bps(m.throughput_bps)),
            vec![
                CostMetric::power_draw().value(watts(m.watts)),
                CostMetric::heat_dissipation()
                    .value(watts_to_btu_per_hour(watts(m.watts)).expect("watts")),
                CostMetric::rack_space().value(rack_units(rack)),
            ],
        )
    };
    // Both systems are one host; the SmartNIC adds no rack space.
    let p = mk(&nic, 1.0);
    let b = mk(&base, 1.0);

    let result = evaluate_multi(
        &nic.name,
        &nic.device_classes,
        &p,
        &base.name,
        &base.device_classes,
        &b,
        Tolerance::new(0.02),
    );

    r.measured_line(format!("joint vector relation: proposed {} baseline", result.joint_relation));
    let mut csv = Csv::new(["metric", "proposed", "baseline", "verdict"]);
    for axis in &result.axes {
        let pv = axis.result.proposed.point().cost().quantity();
        let bv = axis.result.baseline.point().cost().quantity();
        r.measured_line(format!(
            "under {:<16}: proposed {} vs baseline {} -> {}",
            axis.metric, pv, bv, axis.result.verdict
        ));
        csv.row([
            axis.metric.to_owned(),
            pv.to_string(),
            bv.to_string(),
            axis.result.verdict.to_string(),
        ]);
    }
    let divergent = result.divergent_axes();
    if divergent.is_empty() {
        r.measured_line("all axes agree; the claim is metric-robust".to_owned());
    } else {
        r.measured_line(format!(
            "metric-sensitive axes: {} — report all, claim none unqualified",
            divergent.join(", ")
        ));
    }

    // The §3.3 counterexample: "number of CPU cores" cannot cover the
    // SmartNIC system; the validator must say so.
    let violations = validate_cost_metric(
        &CostMetric::cpu_cores(),
        &[(&nic.name, &nic.device_classes), (&base.name, &base.device_classes)],
    );
    assert!(!violations.is_empty());
    r.measured_line("attempting the comparison under 'number of CPU cores' instead:".to_owned());
    for v in &violations {
        r.measured_line(format!("  {v}"));
    }
    r.table("multimetric-axes", csv);
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reports_every_axis_and_the_core_metric_violation() {
        let text = run().render();
        assert!(text.contains("power draw"), "{text}");
        assert!(text.contains("heat dissipation"), "{text}");
        assert!(text.contains("rack space"), "{text}");
        assert!(text.contains("principle 3 violation"), "{text}");
    }

    #[test]
    fn rack_axis_is_same_cost_regime() {
        // Same 1 RU on both sides: the rack-space axis collapses to a
        // unidimensional performance claim.
        let r = run();
        let rack_line = r.measured.iter().find(|l| l.contains("under rack space")).unwrap();
        assert!(rack_line.contains("same cost regime"), "{rack_line}");
    }
}
