//! Ablation: shared-queue vs RSS (per-core-queue) host models.
//!
//! Our baseline deployments use one shared queue feeding all cores —
//! the queueing-theoretically *optimal* arrangement. Real hosts use RSS
//! with per-core queues and flow affinity. This ablation measures the
//! gap under a skewed (Zipf) flow population: throughput is similar,
//! but RSS tail latency blows up on the core the popular flows hash to.
//! Conclusion for the methodology: modeling the baseline with a shared
//! queue is *generous to the baseline*, which is the safe direction for
//! every claim this repository makes (Principle 6's logic again).

use crate::report::ExperimentReport;
use crate::scenarios::{full_chain, CONTENTION_ALPHA};
use apples_core::report::Csv;
use apples_simnet::system::Deployment;
use apples_workload::{ArrivalProcess, PacketSizeDist, WorkloadSpec};

const RUN_NS: u64 = 20_000_000;
const WARMUP_NS: u64 = 2_000_000;

fn workload(rate_pps: f64, zipf: f64) -> WorkloadSpec {
    WorkloadSpec {
        sizes: PacketSizeDist::Fixed(1500),
        arrivals: ArrivalProcess::Poisson { rate_pps },
        flows: 64,
        zipf_s: zipf,
        seed: 61,
    }
}

/// Runs the experiment.
pub fn run() -> ExperimentReport {
    let mut r = ExperimentReport::new(
        "ablation-rss",
        "ablation: shared-queue vs per-core-queue (RSS) baseline models",
    );
    r.paper_line("(modeling choice behind every baseline here: a shared queue is the generous-to-the-baseline arrangement)");

    let mut csv = Csv::new(["zipf_s", "model", "gbps", "p99_us", "mean_us", "jfi"]);
    let mut p99s = Vec::new();
    for zipf in [0.0, 0.8, 1.2] {
        let wl = workload(2.2e6, zipf);
        let shared = Deployment::cpu_host_contended("shared-4c", 4, CONTENTION_ALPHA, full_chain)
            .run(&wl, RUN_NS, WARMUP_NS);
        let rss = Deployment::cpu_host_rss("rss-4c", 4, full_chain).run(&wl, RUN_NS, WARMUP_NS);
        for m in [&shared, &rss] {
            csv.row([
                format!("{zipf}"),
                m.name.clone(),
                format!("{:.3}", m.throughput_bps / 1e9),
                format!("{:.2}", m.p99_latency_ns / 1000.0),
                format!("{:.2}", m.mean_latency_ns / 1000.0),
                format!("{:.4}", m.jain_index.unwrap_or(0.0)),
            ]);
        }
        p99s.push((zipf, shared.p99_latency_ns, rss.p99_latency_ns));
    }

    for (zipf, shared, rss) in &p99s {
        r.measured_line(format!(
            "zipf s={zipf}: p99 shared {:.1} us vs RSS {:.1} us (x{:.1})",
            shared / 1000.0,
            rss / 1000.0,
            rss / shared
        ));
    }
    r.measured_line(
        "skew concentrates popular flows on one RSS queue; the shared queue pools that burst \
         across all cores. Baselines modeled with a shared queue are therefore upper bounds — \
         generous in the direction principle 6 requires"
            .to_owned(),
    );
    r.table("rss-ablation", csv);
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rss_tail_inflates_with_skew() {
        let r = run();
        let (_, csv) = &r.tables[0];
        assert_eq!(csv.len(), 6);
        // At the highest skew the report must show a multiple.
        let line = r.measured.iter().find(|l| l.contains("s=1.2")).unwrap();
        assert!(line.contains('x'), "{line}");
    }
}
