//! Extension experiment: FPGA-offloaded intrusion prevention.
//!
//! The paper cites Pigasus (Zhao et al., OSDI '20 — its reference 42)
//! as the kind of accelerator system whose evaluation needs the
//! methodology: a payload-scanning IPS where per-byte work swamps CPU
//! cores but streams through an FPGA pipeline at line rate. We build
//! both, measure, and run the fair comparison with a *measured* host
//! scaling curve.

use crate::report::ExperimentReport;
use crate::scenarios::{fpga_ips, host_ips, ips_workload, to_gbps};
use apples_core::report::{render_text, Csv};
use apples_core::scaling::MeasuredCurve;
use apples_core::Evaluation;

const RUN_NS: u64 = 8_000_000;
const WARMUP_NS: u64 = 1_000_000;

/// Runs the experiment.
pub fn run() -> ExperimentReport {
    let mut r =
        ExperimentReport::new("ips", "extension: FPGA IPS vs software IPS (Pigasus-shaped)");
    r.paper_line("(the paper's motivating class of system, cf. its ref [42]: 100 Gbps IPS on one server via an FPGA)");

    // Payload-heavy offered load well above a core's DPI capacity.
    let wl = ips_workload(30.0, 17);

    let mut csv = Csv::new(["system", "gbps", "watts", "alerts_blocked"]);
    let host_points: Vec<_> =
        [1u32, 2, 4].iter().map(|&c| (c, host_ips(c).run(&wl, RUN_NS, WARMUP_NS))).collect();
    let fpga = fpga_ips().run(&wl, RUN_NS, WARMUP_NS);

    for (c, m) in &host_points {
        csv.row([
            format!("host-{c}c"),
            format!("{:.4}", to_gbps(m.throughput_bps)),
            format!("{:.2}", m.watts),
            m.policy_drops.to_string(),
        ]);
    }
    csv.row([
        "fpga".to_owned(),
        format!("{:.4}", to_gbps(fpga.throughput_bps)),
        format!("{:.2}", fpga.watts),
        fpga.policy_drops.to_string(),
    ]);

    let base1 = &host_points[0].1;
    r.measured_line(format!(
        "software IPS 1 core : {:.2} Gbps / {:.1} W ({} packets blocked)",
        to_gbps(base1.throughput_bps),
        base1.watts,
        base1.policy_drops
    ));
    r.measured_line(format!(
        "FPGA IPS            : {:.2} Gbps / {:.1} W ({} packets blocked; x{:.1} perf, x{:.2} power)",
        to_gbps(fpga.throughput_bps),
        fpga.watts,
        fpga.policy_drops,
        fpga.throughput_bps / base1.throughput_bps,
        fpga.watts / base1.watts
    ));

    // Both systems enforce the same signatures: blocked counts must be
    // proportional to traffic inspected (the FPGA inspects much more).
    let samples: Vec<(f64, f64, f64)> = host_points
        .iter()
        .map(|(c, m)| {
            (f64::from(*c), m.throughput_bps / base1.throughput_bps, m.watts / base1.watts)
        })
        .collect();
    let curve = MeasuredCurve::from_samples(samples);
    let result =
        Evaluation::new(fpga.as_system(), base1.as_system()).with_baseline_scaling(&curve).run();
    for line in render_text(&result).lines() {
        r.measured_line(line.to_owned());
    }
    r.table("ips-points", csv);
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fpga_ips_report_has_a_verdict_and_blocks_traffic() {
        let r = run();
        let text = r.render();
        assert!(text.contains("verdict:"), "{text}");
        assert!(text.contains("blocked"), "{text}");
        // The FPGA design must deliver a multiple of the software one.
        let line = r.measured.iter().find(|l| l.contains("FPGA IPS")).unwrap();
        assert!(line.contains('x'), "{line}");
    }
}
