//! §4.3: non-scalable systems and metrics (Principle 7), on latency.
//!
//! The paper gives two latency/power cases: a comparable one (5 µs/100 W
//! vs 10 µs/300 W — the proposed system dominates) and a fundamentally
//! incomparable one (5 µs/200 W vs 8 µs/100 W — report both). We replay
//! both, then run the same analysis on simulated unloaded latencies.

use crate::report::ExperimentReport;
use crate::scenarios::{baseline_host, measure, mtu_workload, smartnic_system};
use apples_core::nonscalable::{compare_nonscalable, Comparability};
use apples_core::report::Csv;
use apples_core::{Evaluation, OperatingPoint, System};
use apples_metrics::cost::DeviceClass;
use apples_metrics::perf::PerfMetric;
use apples_metrics::quantity::{micros, watts};
use apples_metrics::CostMetric;

fn lp(us: f64, w: f64) -> OperatingPoint {
    OperatingPoint::new(
        PerfMetric::latency().value(micros(us)),
        CostMetric::power_draw().value(watts(w)),
    )
}

/// Runs the experiment.
pub fn run() -> ExperimentReport {
    let mut r = ExperimentReport::new("ex43", "\u{a7}4.3: non-scalable latency comparisons");
    r.paper_line("comparable: 5 us / 100 W vs 10 us / 300 W -> proposed arguably superior");
    r.paper_line("incomparable: 5 us / 200 W vs 8 us / 100 W -> report both, argue desirability");

    // Paper-number replays.
    let comparable = compare_nonscalable(&lp(5.0, 100.0), &lp(10.0, 300.0));
    let incomparable = compare_nonscalable(&lp(5.0, 200.0), &lp(8.0, 100.0));
    r.measured_line(format!("case 1: {comparable}"));
    r.measured_line(format!("case 2: {incomparable}"));
    assert!(comparable.is_comparable());
    assert!(!incomparable.is_comparable());

    // Scaling must refuse these axes even if someone supplies a model.
    let refusal = Evaluation::new(
        System::new(
            "lowlat (paper)",
            vec![DeviceClass::Cpu, DeviceClass::SmartNic],
            lp(5.0, 200.0),
        ),
        System::new("base (paper)", vec![DeviceClass::Cpu, DeviceClass::Nic], lp(8.0, 100.0)),
    )
    .with_baseline_scaling(&apples_core::scaling::IdealLinear)
    .run();
    r.measured_line(format!("with a scaling model supplied anyway: {}", refusal.verdict));

    // Simulated: unloaded latency of the SmartNIC path vs the host path.
    let wl = mtu_workload(0.5, 4); // far below capacity: latency floor
    let base = measure(&baseline_host(1), &wl);
    let nic = measure(&smartnic_system(), &wl);
    let sim = compare_nonscalable(&nic.latency_power_point(), &base.latency_power_point());
    r.measured_line(format!(
        "simulated: smartnic {:.2} us / {:.1} W vs host {:.2} us / {:.1} W -> {}",
        nic.mean_latency_ns / 1000.0,
        nic.watts,
        base.mean_latency_ns / 1000.0,
        base.watts,
        match &sim {
            Comparability::Comparable(rel) => format!("comparable ({rel})"),
            Comparability::Incomparable { .. } => "fundamentally incomparable".to_owned(),
        }
    ));

    let mut csv = Csv::new(["system", "mean_us", "p99_us", "watts"]);
    csv.row([
        "baseline-1c".to_owned(),
        format!("{:.3}", base.mean_latency_ns / 1000.0),
        format!("{:.3}", base.p99_latency_ns / 1000.0),
        format!("{:.2}", base.watts),
    ]);
    csv.row([
        "smartnic".to_owned(),
        format!("{:.3}", nic.mean_latency_ns / 1000.0),
        format!("{:.3}", nic.p99_latency_ns / 1000.0),
        format!("{:.2}", nic.watts),
    ]);
    r.table("ex43-latency", csv);
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_paper_cases_resolve_as_in_the_paper() {
        let text = run().render();
        assert!(text.contains("case 1: comparable"), "{text}");
        assert!(text.contains("case 2: fundamentally incomparable"), "{text}");
    }

    #[test]
    fn scaling_refusal_cites_principle_7() {
        let text = run().render();
        assert!(text.contains("does not improve under horizontal scaling"), "{text}");
    }
}
