//! §4.2.1's worked example: programmable-switch preprocessing vs an
//! all-cores host, closed by *ideal* scaling (Principle 6) — again both
//! as a paper-number replay and end-to-end on the simulator.

use crate::report::ExperimentReport;
use crate::scenarios::{baseline_host, measure, saturating_workload, switch_system, to_gbps};
use apples_core::report::{render_text, Csv};
use apples_core::scaling::IdealLinear;
use apples_core::{Evaluation, OperatingPoint, System};
use apples_metrics::cost::DeviceClass;
use apples_metrics::perf::PerfMetric;
use apples_metrics::quantity::{gbps, watts};
use apples_metrics::CostMetric;

fn tp(g: f64, w: f64) -> OperatingPoint {
    OperatingPoint::new(
        PerfMetric::throughput_bps().value(gbps(g)),
        CostMetric::power_draw().value(watts(w)),
    )
}

/// The paper-number replay: A = 100 Gbps/200 W, B = 35 Gbps/100 W.
pub fn paper_replay() -> apples_core::evaluate::EvaluationResult {
    Evaluation::new(
        System::new(
            "firewall+switch (paper)",
            vec![DeviceClass::Cpu, DeviceClass::ProgrammableSwitch],
            tp(100.0, 200.0),
        ),
        System::new(
            "firewall all-cores (paper)",
            vec![DeviceClass::Cpu, DeviceClass::Nic],
            tp(35.0, 100.0),
        ),
    )
    .with_baseline_scaling(&IdealLinear)
    .run()
}

/// Runs the experiment.
pub fn run() -> ExperimentReport {
    let mut r = ExperimentReport::new(
        "ex421",
        "\u{a7}4.2.1: switch preprocessing vs ideally scaled all-cores baseline",
    );
    r.paper_line(
        "proposed: 100 Gbps / 200 W (all cores + switch); baseline: 35 Gbps / 100 W (all cores)",
    );
    r.paper_line(
        "ideal scaling: baseline reaches 70 Gbps @ 200 W or 100 Gbps @ 286 W; proposed prevails",
    );

    let replay = paper_replay();
    r.measured_line("— paper-number replay —".to_owned());
    for line in render_text(&replay).lines() {
        r.measured_line(line.to_owned());
    }

    // Simulated: 8-core host baseline (all cores) vs switch-fronted host.
    let wl = saturating_workload(2);
    let base = measure(&baseline_host(8), &wl);
    let sw = measure(&switch_system(8), &wl);

    let result =
        Evaluation::new(sw.as_system(), base.as_system()).with_baseline_scaling(&IdealLinear).run();

    r.measured_line("— simulated substrate —".to_owned());
    r.measured_line(format!(
        "baseline (8 cores): {:.2} Gbps / {:.1} W",
        to_gbps(base.throughput_bps),
        base.watts
    ));
    r.measured_line(format!(
        "switch-fronted    : {:.2} Gbps / {:.1} W (x{:.2} perf, x{:.2} power)",
        to_gbps(sw.throughput_bps),
        sw.watts,
        sw.throughput_bps / base.throughput_bps,
        sw.watts / base.watts
    ));
    for line in render_text(&result).lines() {
        r.measured_line(line.to_owned());
    }

    let mut csv = Csv::new(["system", "gbps", "watts"]);
    csv.row([
        "baseline-8c".to_owned(),
        format!("{:.4}", to_gbps(base.throughput_bps)),
        format!("{:.2}", base.watts),
    ]);
    csv.row([
        "switch-fronted".to_owned(),
        format!("{:.4}", to_gbps(sw.throughput_bps)),
        format!("{:.2}", sw.watts),
    ]);
    r.table("ex421-points", csv);
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use apples_core::verdict::{ScaledOutcome, Verdict};

    #[test]
    fn paper_replay_prevails_under_generous_scaling() {
        let res = paper_replay();
        match &res.verdict {
            Verdict::Scaled { generous, outcome, .. } => {
                assert!(*generous);
                assert_eq!(*outcome, ScaledOutcome::ProposedPrevails);
            }
            other => panic!("unexpected verdict {other:?}"),
        }
    }

    #[test]
    fn simulated_run_reports_a_scaled_verdict() {
        let text = run().render();
        assert!(text.contains("ideal linear scaling of the baseline (a generous bound)"), "{text}");
    }
}
