//! Extension experiment: the §5 reviewer checklist as a tool.
//!
//! The paper wants reviewers to "consider these principles when
//! reviewing papers". We run the auditor over two evaluations — a
//! compliant one (the §4.2 comparison on the simulator) and a sloppy one
//! (cores as the cost metric) — and print the checklists a reviewer
//! would see. The third classic violation, scaling a latency baseline,
//! cannot even be constructed through this API: `Evaluation` refuses to
//! scale non-scalable metrics, so the auditor's P7-Fail branch exists
//! only for results produced outside the engine.

use crate::report::ExperimentReport;
use crate::scenarios::{baseline_host, measure, saturating_workload, smartnic_system};
use apples_core::checklist::{audit, render_checklist, Status};
use apples_core::scaling::IdealLinear;
use apples_core::{Evaluation, OperatingPoint, System};
use apples_metrics::cost::{CostMetric, DeviceClass};
use apples_metrics::perf::PerfMetric;
use apples_metrics::quantity::{cores, gbps};

/// Runs the experiment.
pub fn run() -> ExperimentReport {
    let mut r =
        ExperimentReport::new("checklist", "extension: the \u{a7}5 reviewer checklist, applied");
    r.paper_line(
        "\"we hope ... reviewers consider these principles when reviewing papers\" (\u{a7}5)",
    );

    // Case 1: the compliant §4.2 comparison on the simulator.
    let wl = saturating_workload(93);
    let base = measure(&baseline_host(1), &wl);
    let nic = measure(&smartnic_system(), &wl);
    let good = Evaluation::new(nic.as_system(), base.as_system())
        .with_baseline_scaling(&IdealLinear)
        .run();
    let good_items = audit(&good);
    r.measured_line("— compliant evaluation (simulated \u{a7}4.2) —".to_owned());
    for line in render_checklist(&good_items).lines() {
        r.measured_line(line.to_owned());
    }
    assert!(good_items.iter().all(|i| i.status != Status::Fail));

    // Case 2: the sloppy evaluation the paper's intro complains about —
    // cores as the cost axis with a SmartNIC in the datapath.
    let sloppy = Evaluation::new(
        System::new(
            "smartnic-sys",
            vec![DeviceClass::Cpu, DeviceClass::SmartNic],
            OperatingPoint::new(
                PerfMetric::throughput_bps().value(gbps(20.0)),
                CostMetric::cpu_cores().value(cores(4.0)),
            ),
        ),
        System::new(
            "software",
            vec![DeviceClass::Cpu],
            OperatingPoint::new(
                PerfMetric::throughput_bps().value(gbps(10.0)),
                CostMetric::cpu_cores().value(cores(4.0)),
            ),
        ),
    )
    .run();
    let sloppy_items = audit(&sloppy);
    r.measured_line("— the intro's \"2x faster on the same cores\" claim —".to_owned());
    for line in render_checklist(&sloppy_items).lines() {
        r.measured_line(line.to_owned());
    }
    assert!(
        sloppy_items.iter().any(|i| i.principle == 3 && i.status == Status::Fail),
        "the cores metric must fail end-to-end coverage"
    );

    r.measured_line(
        "the auditor turns the paper's hoped-for reviewing norm into a function of the \
         evaluation artifact itself"
            .to_owned(),
    );
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_checklists_render_with_expected_outcomes() {
        let text = run().render();
        assert!(text.contains("P3 [FAIL]"), "{text}");
        assert!(text.contains("P6 [PASS]"), "{text}");
        assert!(text.contains("P1 [PASS]"), "{text}");
    }
}
