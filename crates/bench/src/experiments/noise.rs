//! Ablation: choosing the regime tolerance from measured noise.
//!
//! Regime detection (Principle 4) needs an equality tolerance; this
//! experiment measures the same deployment under several workload seeds
//! and derives the tolerance from the observed coefficient of variation
//! — replacing the folklore "1%" with a number the data justifies.

use crate::report::ExperimentReport;
use crate::scenarios::{baseline_host, measure, optimized_host};
use apples_core::regime::{detect_regime, Regime};
use apples_core::report::Csv;
use apples_core::Summary;
use apples_workload::{ArrivalProcess, PacketSizeDist, WorkloadSpec};

/// A saturating workload whose flow population is statistically stable
/// across seeds: uniform popularity over many flows, so reseeding varies
/// arrival timing (the noise we want to measure) rather than the policy
/// mix (which would be a *workload* change, not noise).
fn stable_workload(seed: u64) -> WorkloadSpec {
    WorkloadSpec {
        sizes: PacketSizeDist::Fixed(1500),
        arrivals: ArrivalProcess::Poisson { rate_pps: 120.0 * 1e9 / (1520.0 * 8.0) },
        flows: 4096,
        zipf_s: 0.0,
        seed,
    }
}

/// Runs the experiment.
pub fn run() -> ExperimentReport {
    let mut r = ExperimentReport::new(
        "ablation-noise",
        "ablation: regime tolerance derived from measurement noise",
    );
    r.paper_line("(\u{a7}2 cites the reproducibility panel [17]: same-regime equality needs a defensible tolerance)");

    // Five seeds of the same Poisson workload against the same system.
    let seeds = [101u64, 102, 103, 104, 105];
    let mut gbps = Vec::new();
    let mut watts = Vec::new();
    let mut csv = Csv::new(["seed", "gbps", "watts"]);
    for &seed in &seeds {
        let m = measure(&baseline_host(1), &stable_workload(seed));
        gbps.push(m.throughput_bps / 1e9);
        watts.push(m.watts);
        csv.row([
            seed.to_string(),
            format!("{:.4}", m.throughput_bps / 1e9),
            format!("{:.3}", m.watts),
        ]);
    }
    let g = Summary::from_samples(&gbps);
    let w = Summary::from_samples(&watts);
    r.measured_line(format!("throughput across seeds: {g} Gbps (CV {:.4})", g.cv()));
    r.measured_line(format!("power across seeds     : {w} W (CV {:.4})", w.cv()));

    let tol = g.suggested_tolerance(3.0);
    r.measured_line(format!(
        "suggested regime tolerance: {:.3}% (3 measured CVs, floored at 0.1%)",
        tol.rel * 100.0
    ));

    // Apply it: the fig1a comparison under the derived tolerance.
    let base = measure(&baseline_host(1), &stable_workload(101));
    let opt = measure(&optimized_host(1), &stable_workload(101));
    let regime = detect_regime(&opt.throughput_power_point(), &base.throughput_power_point(), tol);
    r.measured_line(format!("fig1a regime under the derived tolerance: {regime}"));
    assert_eq!(regime, Regime::SameCost, "saturated same-hardware runs share the cost regime");
    r.table("noise-samples", csv);
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derives_a_tolerance_and_applies_it() {
        let text = run().render();
        assert!(text.contains("suggested regime tolerance"), "{text}");
        assert!(text.contains("same cost regime"), "{text}");
    }

    #[test]
    fn noise_exists_but_is_small() {
        let r = run();
        let line = r.measured.iter().find(|l| l.contains("throughput across seeds")).unwrap();
        // CV should be nonzero (different Poisson seeds) but far below
        // the differences the experiments rely on.
        assert!(line.contains("CV 0.0"), "{line}");
    }
}
