//! Extension experiment: GPU-style batch processing — the third
//! accelerator shape — through the methodology's lens.
//!
//! Batching trades latency (formation delay) for throughput (kernel
//! amortization). On the (throughput, power) axes the GPU design can be
//! evaluated with scaling like any other; on the (latency, power) axes
//! it is the textbook §4.3 case: no provisioning decision removes the
//! batch-formation floor, so only Principle 7 comparisons are licensed.

use crate::report::ExperimentReport;
use crate::scenarios::{baseline_host, firewall_chain, measure, to_gbps, RUN_NS, WARMUP_NS};
use apples_core::nonscalable::Comparability;
use apples_core::report::Csv;
use apples_core::scaling::IdealLinear;
use apples_core::{compare_nonscalable, Evaluation};
use apples_simnet::engine::BatchPolicy;
use apples_simnet::system::Deployment;
use apples_workload::{ArrivalProcess, PacketSizeDist, WorkloadSpec};

fn workload(rate_pps: f64) -> WorkloadSpec {
    WorkloadSpec {
        sizes: PacketSizeDist::Fixed(1500),
        arrivals: ArrivalProcess::Poisson { rate_pps },
        flows: 64,
        zipf_s: 1.0,
        seed: 81,
    }
}

/// Runs the experiment.
pub fn run() -> ExperimentReport {
    let mut r = ExperimentReport::new(
        "batching",
        "extension: GPU batching — throughput via amortization, latency via principle 7",
    );
    r.paper_line("(the accelerator class \u{a7}4.3 implies: batch formation sets a latency floor no scaling removes)");

    // Batch-size sweep at saturating load: the amortization curve.
    let heavy = workload(4e6);
    let mut csv = Csv::new(["max_batch", "gbps", "watts", "mean_latency_us", "p99_us"]);
    for max_batch in [8usize, 32, 128, 512] {
        let gpu = Deployment::gpu_offload(
            format!("gpu-b{max_batch}"),
            BatchPolicy::new(max_batch, 100_000, 15_000),
            firewall_chain,
        )
        .run(&heavy, RUN_NS, WARMUP_NS);
        csv.row([
            max_batch.to_string(),
            format!("{:.3}", to_gbps(gpu.throughput_bps)),
            format!("{:.2}", gpu.watts),
            format!("{:.1}", gpu.mean_latency_ns / 1000.0),
            format!("{:.1}", gpu.p99_latency_ns / 1000.0),
        ]);
    }
    r.measured_line("batch-size sweep at 4 Mpps offered: throughput rises with batch size while the latency floor persists (see CSV)".to_owned());

    // The fair comparison, both axes, against the 1-core baseline.
    let gpu =
        Deployment::gpu_offload("gpu-fw", BatchPolicy::new(256, 100_000, 15_000), firewall_chain);
    let gpu_heavy = gpu.run(&heavy, RUN_NS, WARMUP_NS);
    let base_heavy = measure(&baseline_host(1), &heavy);
    let tput_verdict = Evaluation::new(gpu_heavy.as_system(), base_heavy.as_system())
        .with_baseline_scaling(&IdealLinear)
        .run();
    r.measured_line(format!(
        "throughput axes: gpu {:.2} Gbps / {:.1} W vs host {:.2} Gbps / {:.1} W -> {}",
        to_gbps(gpu_heavy.throughput_bps),
        gpu_heavy.watts,
        to_gbps(base_heavy.throughput_bps),
        base_heavy.watts,
        tput_verdict.verdict
    ));

    // Latency axes at light load: Principle 7 territory.
    let light = workload(100_000.0);
    let gpu_light = gpu.run(&light, RUN_NS, WARMUP_NS);
    let base_light = measure(&baseline_host(1), &light);
    let lat =
        compare_nonscalable(&gpu_light.latency_power_point(), &base_light.latency_power_point());
    r.measured_line(format!(
        "latency axes (light load): gpu {:.1} us / {:.1} W vs host {:.1} us / {:.1} W -> {}",
        gpu_light.mean_latency_ns / 1000.0,
        gpu_light.watts,
        base_light.mean_latency_ns / 1000.0,
        base_light.watts,
        match &lat {
            Comparability::Comparable(rel) => format!("comparable ({rel})"),
            Comparability::Incomparable { .. } =>
                "fundamentally incomparable (report both)".to_owned(),
        }
    ));
    r.measured_line(
        "the batching design must argue for its regime (throughput-bound deployments) rather \
         than claim overall superiority — exactly the \u{a7}4.3 prescription"
            .to_owned(),
    );
    r.table("batching-sweep", csv);
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_and_both_axis_verdicts_reported() {
        let rep = run();
        let (_, csv) = &rep.tables[0];
        assert_eq!(csv.len(), 4);
        let text = rep.render();
        assert!(text.contains("throughput axes:"), "{text}");
        assert!(text.contains("latency axes"), "{text}");
    }

    #[test]
    fn gpu_latency_is_never_scaled() {
        // The latency-axis outcome must be a principle 7 statement, not
        // a scaled verdict.
        let text = run().render();
        assert!(text.contains("comparable") || text.contains("report both"), "{text}");
    }
}
