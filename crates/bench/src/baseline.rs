//! `xp bench --baseline FILE [--strict]`: the comparison half of
//! relative perf gating (the export half shipped with
//! `--export-baseline`).
//!
//! Instead of a static floor, each scenario is gated against the
//! *measured* baseline: the recorded bootstrap CI on events/second,
//! shrunk by a relative `max_drop` allowance. A scenario regresses when
//! its current CI upper bound falls below the baseline CI lower bound
//! scaled by `(1 - max_drop)` — i.e. when even the most favorable
//! reading of today's run cannot overlap the most conservative reading
//! of the recorded run after the allowance. Interval overlap, not
//! point-estimate comparison, per the statistical-evaluation playbook:
//! two noisy medians an epsilon apart must not flip a gate.
//!
//! The allowance is resolved per scenario with explicit precedence:
//! a per-entry `max_drop` override beats an explicit `--max-drop` flag,
//! which beats the file-level `defaults.max_drop`, which beats
//! [`DEFAULT_MAX_DROP`]. An entry may also carry an absolute
//! `min_floor` (events/second) — a hand-set safety net that holds even
//! when repeated re-exports would otherwise let the relative baseline
//! drift downward one tolerated notch at a time.
//!
//! Exit-code taxonomy (what `scripts/ci.sh` and humans key on):
//! - `0` — every scenario within the gate (or `--strict` absent).
//! - `2` — at least one scenario regressed and `--strict` was given.
//! - `3` — the baseline file does not exist.
//! - `4` — the baseline file exists but cannot be parsed.

use crate::microbench::{BenchSummary, EngineBaseline, FUSED_SPEEDUP_MIN};

/// Relative drop allowed before a scenario counts as regressed.
/// Deliberately loose: wall-clock noise on shared CI runners is real,
/// and the CI-overlap rule already absorbs run-to-run variance.
pub const DEFAULT_MAX_DROP: f64 = 0.15;

/// One recorded scenario from a `--export-baseline` file.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineEntry {
    /// Scenario name (`forward-2stage`, `batch-gpu`).
    pub scenario: String,
    /// Scheduler label (`wheel` / `heap`).
    pub scheduler: String,
    /// Recorded median event throughput, events/second.
    pub events_per_sec: f64,
    /// Recorded bootstrap CI lower bound.
    pub ci_lo: f64,
    /// Recorded bootstrap CI upper bound.
    pub ci_hi: f64,
    /// Per-entry `max_drop` override; beats every other source.
    pub max_drop: Option<f64>,
    /// Absolute events/second floor this scenario must clear no matter
    /// what the relative gate tolerates.
    pub min_floor: Option<f64>,
}

/// A parsed `--export-baseline` file: the recorded scenarios plus the
/// file-level gate defaults.
#[derive(Debug, Clone, PartialEq)]
pub struct Baseline {
    /// File-level `defaults.max_drop`, when present.
    pub max_drop: Option<f64>,
    /// The recorded scenario entries.
    pub entries: Vec<BaselineEntry>,
}

/// Pulls the next `"key": value` scalar out of `obj`. Good enough for
/// the machine-written baseline format; anything surprising is a parse
/// error, never a silent pass.
fn field<'a>(obj: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\"");
    let rest = &obj[obj.find(&needle)? + needle.len()..];
    let rest = rest.trim_start().strip_prefix(':')?.trim_start();
    let end = rest
        .char_indices()
        .find(|&(i, c)| {
            if rest.starts_with('"') {
                i > 0 && c == '"' && rest.as_bytes()[i - 1] != b'\\'
            } else {
                c == ',' || c == '}' || c == '\n'
            }
        })
        .map(|(i, _)| if rest.starts_with('"') { i + 1 } else { i })?;
    Some(rest[..end].trim())
}

fn string_field(obj: &str, key: &str) -> Result<String, String> {
    let raw = field(obj, key).ok_or_else(|| format!("missing \"{key}\""))?;
    raw.strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .map(str::to_owned)
        .ok_or_else(|| format!("\"{key}\" is not a string: {raw}"))
}

fn number_field(obj: &str, key: &str) -> Result<f64, String> {
    let raw = field(obj, key).ok_or_else(|| format!("missing \"{key}\""))?;
    raw.parse::<f64>().map_err(|_| format!("\"{key}\" is not a number: {raw}"))
}

/// Like [`number_field`] but absent keys are `None`, not errors —
/// the shape overrides take.
fn opt_number_field(obj: &str, key: &str) -> Result<Option<f64>, String> {
    match field(obj, key) {
        None => Ok(None),
        Some(raw) => {
            raw.parse::<f64>().map(Some).map_err(|_| format!("\"{key}\" is not a number: {raw}"))
        }
    }
}

fn validate_max_drop(v: Option<f64>, ctx: &str) -> Result<(), String> {
    match v {
        Some(d) if !(0.0..1.0).contains(&d) => {
            Err(format!("{ctx}: max_drop must be a fraction in [0, 1), got {d}"))
        }
        _ => Ok(()),
    }
}

/// Parses a `--export-baseline` file. Returns a descriptive error for
/// anything that is not a well-formed baseline (exit code 4 material).
pub fn parse_baseline(src: &str) -> Result<Baseline, String> {
    if !src.contains("\"baseline\"") {
        return Err("not a baseline export (no \"baseline\" tag)".to_owned());
    }
    let max_drop = match src.find("\"defaults\"") {
        None => None,
        Some(i) => {
            let open = src[i..]
                .find('{')
                .map(|j| i + j)
                .ok_or_else(|| "\"defaults\" is not an object".to_owned())?;
            let close = src[open..]
                .find('}')
                .map(|j| open + j + 1)
                .ok_or_else(|| "unterminated defaults object".to_owned())?;
            opt_number_field(&src[open..close], "max_drop")?
        }
    };
    validate_max_drop(max_drop, "defaults")?;
    let engine = src
        .find("\"engine\"")
        .and_then(|i| src[i..].find('[').map(|j| &src[i + j..]))
        .ok_or_else(|| "no \"engine\" entry array".to_owned())?;
    let mut entries = Vec::new();
    let mut rest = engine;
    while let Some(open) = rest.find('{') {
        let close = rest[open..].find('}').ok_or_else(|| "unterminated entry object".to_owned())?;
        let obj = &rest[open..open + close + 1];
        entries.push(BaselineEntry {
            scenario: string_field(obj, "scenario")?,
            scheduler: string_field(obj, "scheduler")?,
            events_per_sec: number_field(obj, "events_per_sec")?,
            ci_lo: number_field(obj, "events_per_sec_ci_lo")?,
            ci_hi: number_field(obj, "events_per_sec_ci_hi")?,
            max_drop: opt_number_field(obj, "max_drop")?,
            min_floor: opt_number_field(obj, "min_floor")?,
        });
        rest = &rest[open + close + 1..];
        // Stop at the end of the engine array; later sections (if any)
        // are not entries.
        if let Some(end) = rest.find(']') {
            if rest[..end].find('{').is_none() {
                break;
            }
        }
    }
    if entries.is_empty() {
        return Err("baseline has no engine entries".to_owned());
    }
    for e in &entries {
        if !(e.ci_lo.is_finite() && e.ci_hi.is_finite() && e.ci_lo <= e.ci_hi) {
            return Err(format!(
                "{}/{}: malformed CI [{}, {}]",
                e.scenario, e.scheduler, e.ci_lo, e.ci_hi
            ));
        }
        validate_max_drop(e.max_drop, &format!("{}/{}", e.scenario, e.scheduler))?;
    }
    Ok(Baseline { max_drop, entries })
}

/// Gates the current run against a recorded baseline. Returns one
/// message per regressed scenario (empty = gate passed). Scenarios in
/// the baseline but absent from the current run are regressions too —
/// a deleted benchmark must not silently pass its gate. New scenarios
/// with no recorded baseline pass (the next `--export-baseline` picks
/// them up).
///
/// `cli_max_drop` is the explicit `--max-drop` value when the flag was
/// given; per-entry overrides beat it, and it beats the file default.
pub fn compare(
    current: &[EngineBaseline],
    baseline: &Baseline,
    cli_max_drop: Option<f64>,
) -> Vec<String> {
    let mut failures = Vec::new();
    for b in &baseline.entries {
        let max_drop =
            b.max_drop.or(cli_max_drop).or(baseline.max_drop).unwrap_or(DEFAULT_MAX_DROP);
        let floor = b.ci_lo * (1.0 - max_drop);
        match current.iter().find(|c| c.scenario == b.scenario && c.scheduler == b.scheduler) {
            None => failures.push(format!(
                "{}/{}: in baseline but not measured by this run",
                b.scenario, b.scheduler
            )),
            Some(c) => {
                if c.ci_hi < floor {
                    failures.push(format!(
                        "{}/{}: regressed — current CI [{:.3e}, {:.3e}] ev/s is entirely below \
                         baseline lower bound {:.3e} x (1 - {max_drop}) = {:.3e}",
                        b.scenario, b.scheduler, c.ci_lo, c.ci_hi, b.ci_lo, floor
                    ));
                }
                if let Some(min_floor) = b.min_floor {
                    if c.ci_hi < min_floor {
                        failures.push(format!(
                            "{}/{}: below the absolute min_floor — current CI \
                             [{:.3e}, {:.3e}] ev/s is entirely below {:.3e}",
                            b.scenario, b.scheduler, c.ci_lo, c.ci_hi, min_floor
                        ));
                    }
                }
            }
        }
    }
    failures
}

/// The full `--baseline` gate: everything [`compare`] checks, plus the
/// identity and fusion invariants the static floor gate used to carry —
/// so retiring `--check-floor` from CI loses no coverage.
pub fn check(
    summary: &BenchSummary,
    baseline: &Baseline,
    cli_max_drop: Option<f64>,
) -> Vec<String> {
    let mut failures = Vec::new();
    if !summary.identical_results {
        failures.push("identical_results is false: a scheduler or schedule changed results".into());
    }
    for b in &summary.engine_baselines {
        if b.fused_speedup < FUSED_SPEEDUP_MIN {
            failures.push(format!(
                "{} ({}): fused_speedup {:.3} below the {FUSED_SPEEDUP_MIN} floor — \
                 pipeline fusion made the engine slower",
                b.scenario, b.scheduler, b.fused_speedup
            ));
        }
    }
    failures.extend(compare(&summary.engine_baselines, baseline, cli_max_drop));
    failures
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(scenario: &str, scheduler: &'static str, lo: f64, hi: f64) -> EngineBaseline {
        EngineBaseline {
            scenario: scenario.to_owned(),
            scheduler,
            events_per_sec: (lo + hi) / 2.0,
            ci_lo: lo,
            ci_hi: hi,
            fused_speedup: 1.0,
        }
    }

    fn sample_export() -> String {
        r#"{
  "baseline": "simnet-engine",
  "quick": false,
  "bootstrap_resamples": 200,
  "defaults": {
    "max_drop": 0.15
  },
  "engine": [
    {
      "scenario": "forward-2stage",
      "scheduler": "wheel",
      "events_per_sec": 2.0e7,
      "events_per_sec_ci_lo": 1.9e7,
      "events_per_sec_ci_hi": 2.1e7,
      "fused_speedup": 1.4
    },
    {
      "scenario": "batch-gpu",
      "scheduler": "heap",
      "events_per_sec": 5.0e6,
      "events_per_sec_ci_lo": 4.8e6,
      "events_per_sec_ci_hi": 5.2e6,
      "fused_speedup": 1.0
    }
  ]
}"#
        .to_owned()
    }

    #[test]
    fn parses_the_export_format_roundtrip() {
        let base = parse_baseline(&sample_export()).expect("parses");
        assert_eq!(base.max_drop, Some(0.15));
        assert_eq!(base.entries.len(), 2);
        assert_eq!(base.entries[0].scenario, "forward-2stage");
        assert_eq!(base.entries[0].scheduler, "wheel");
        assert!((base.entries[0].ci_lo - 1.9e7).abs() < 1.0);
        assert_eq!(base.entries[0].max_drop, None);
        assert_eq!(base.entries[0].min_floor, None);
        assert_eq!(base.entries[1].scenario, "batch-gpu");
    }

    #[test]
    fn parses_per_entry_overrides() {
        let src = r#"{
  "baseline": "x",
  "engine": [
    {
      "scenario": "forward-2stage",
      "scheduler": "wheel",
      "events_per_sec": 2.0e7,
      "events_per_sec_ci_lo": 1.9e7,
      "events_per_sec_ci_hi": 2.1e7,
      "max_drop": 0.05,
      "min_floor": 7.0e6
    }
  ]
}"#;
        let base = parse_baseline(src).expect("parses");
        assert_eq!(base.max_drop, None);
        assert_eq!(base.entries[0].max_drop, Some(0.05));
        assert_eq!(base.entries[0].min_floor, Some(7.0e6));
    }

    #[test]
    fn rejects_out_of_range_max_drop() {
        let src = r#"{
  "baseline": "x",
  "defaults": { "max_drop": 1.5 },
  "engine": [
    {
      "scenario": "a",
      "scheduler": "wheel",
      "events_per_sec": 1.0,
      "events_per_sec_ci_lo": 1.0,
      "events_per_sec_ci_hi": 1.0
    }
  ]
}"#;
        let err = parse_baseline(src).expect_err("1.5 is not a fraction");
        assert!(err.contains("max_drop"), "{err}");
    }

    #[test]
    fn rejects_malformed_baselines() {
        assert!(parse_baseline("{}").is_err(), "no baseline tag");
        assert!(parse_baseline(r#"{"baseline": "simnet-engine"}"#).is_err(), "no engine array");
        assert!(
            parse_baseline(
                r#"{"baseline": "x", "engine": [{"scenario": "a", "scheduler": "wheel"}]}"#
            )
            .is_err(),
            "entry missing numbers"
        );
    }

    #[test]
    fn overlapping_intervals_pass_the_gate() {
        let base = parse_baseline(&sample_export()).expect("parses");
        // Slightly slower but CI still overlaps the shrunk baseline.
        let current = vec![
            entry("forward-2stage", "wheel", 1.7e7, 1.8e7),
            entry("batch-gpu", "heap", 4.5e6, 4.9e6),
        ];
        assert!(compare(&current, &base, None).is_empty());
    }

    #[test]
    fn clear_regressions_fail_the_gate() {
        let base = parse_baseline(&sample_export()).expect("parses");
        // Half the recorded throughput: no overlap at any reasonable drop.
        let current = vec![
            entry("forward-2stage", "wheel", 0.9e7, 1.0e7),
            entry("batch-gpu", "heap", 4.8e6, 5.2e6),
        ];
        let failures = compare(&current, &base, None);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("forward-2stage/wheel"));
    }

    #[test]
    fn missing_scenarios_count_as_regressions() {
        let base = parse_baseline(&sample_export()).expect("parses");
        let current = vec![entry("forward-2stage", "wheel", 1.9e7, 2.1e7)];
        let failures = compare(&current, &base, None);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("batch-gpu/heap"));
        assert!(failures[0].contains("not measured"));
    }

    #[test]
    fn new_scenarios_without_a_baseline_pass() {
        let base = parse_baseline(&sample_export()).expect("parses");
        let current = vec![
            entry("forward-2stage", "wheel", 1.9e7, 2.1e7),
            entry("batch-gpu", "heap", 4.8e6, 5.2e6),
            entry("brand-new", "wheel", 1.0, 2.0),
        ];
        assert!(compare(&current, &base, None).is_empty());
    }

    #[test]
    fn max_drop_precedence_is_entry_then_cli_then_file_default() {
        let mut base = parse_baseline(&sample_export()).expect("parses");
        // forward-2stage baseline ci_lo = 1.9e7. Current ci_hi = 1.5e7:
        // a ~21% drop below the recorded lower bound.
        let current = vec![
            entry("forward-2stage", "wheel", 1.4e7, 1.5e7),
            entry("batch-gpu", "heap", 4.8e6, 5.2e6),
        ];
        // File default 0.15 → fails.
        assert_eq!(compare(&current, &base, None).len(), 1);
        // Explicit CLI 0.30 beats the file default → passes.
        assert!(compare(&current, &base, Some(0.30)).is_empty());
        // Per-entry 0.10 beats the CLI's 0.30 → fails again.
        base.entries[0].max_drop = Some(0.10);
        assert_eq!(compare(&current, &base, Some(0.30)).len(), 1);
    }

    #[test]
    fn min_floor_holds_even_when_the_relative_gate_passes() {
        let mut base = parse_baseline(&sample_export()).expect("parses");
        // A drifted-down baseline: recorded CI near the current numbers,
        // so the relative gate is happy — but the hand-set absolute
        // floor is not.
        base.entries[0].ci_lo = 1.0e6;
        base.entries[0].min_floor = Some(5.0e6);
        let current = vec![
            entry("forward-2stage", "wheel", 1.0e6, 1.1e6),
            entry("batch-gpu", "heap", 4.8e6, 5.2e6),
        ];
        let failures = compare(&current, &base, None);
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert!(failures[0].contains("min_floor"), "{failures:?}");
    }

    #[test]
    fn full_check_carries_identity_and_fusion_gates() {
        use crate::microbench::BenchSummary;
        let base = parse_baseline(&sample_export()).expect("parses");
        let mut summary = BenchSummary {
            forward_wheel_events_per_sec: 2.0e7,
            identical_results: true,
            obs_overhead_ratio: 1.0,
            engine_baselines: vec![
                entry("forward-2stage", "wheel", 1.9e7, 2.1e7),
                entry("batch-gpu", "heap", 4.8e6, 5.2e6),
            ],
        };
        assert!(check(&summary, &base, None).is_empty());

        summary.identical_results = false;
        assert_eq!(check(&summary, &base, None).len(), 1, "identity break must fail");

        summary.identical_results = true;
        summary.engine_baselines[0].fused_speedup = 0.5;
        let failures = check(&summary, &base, None);
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert!(failures[0].contains("fused_speedup"), "{failures:?}");
    }
}
