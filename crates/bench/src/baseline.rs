//! `xp bench --baseline FILE [--strict]`: the comparison half of
//! relative perf gating (the export half shipped with
//! `--export-baseline`).
//!
//! Instead of a static floor, each scenario is gated against the
//! *measured* baseline: the recorded bootstrap CI on events/second,
//! shrunk by a relative `max_drop` allowance. A scenario regresses when
//! its current CI upper bound falls below the baseline CI lower bound
//! scaled by `(1 - max_drop)` — i.e. when even the most favorable
//! reading of today's run cannot overlap the most conservative reading
//! of the recorded run after the allowance. Interval overlap, not
//! point-estimate comparison, per the statistical-evaluation playbook:
//! two noisy medians an epsilon apart must not flip a gate.
//!
//! Exit-code taxonomy (what `scripts/ci.sh` and humans key on):
//! - `0` — every scenario within the gate (or `--strict` absent).
//! - `2` — at least one scenario regressed and `--strict` was given.
//! - `3` — the baseline file does not exist.
//! - `4` — the baseline file exists but cannot be parsed.

use crate::microbench::EngineBaseline;

/// Relative drop allowed before a scenario counts as regressed.
/// Deliberately loose: wall-clock noise on shared CI runners is real,
/// and the CI-overlap rule already absorbs run-to-run variance.
pub const DEFAULT_MAX_DROP: f64 = 0.15;

/// One recorded scenario from a `--export-baseline` file.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineEntry {
    /// Scenario name (`forward-2stage`, `batch-gpu`).
    pub scenario: String,
    /// Scheduler label (`wheel` / `heap`).
    pub scheduler: String,
    /// Recorded median event throughput, events/second.
    pub events_per_sec: f64,
    /// Recorded bootstrap CI lower bound.
    pub ci_lo: f64,
    /// Recorded bootstrap CI upper bound.
    pub ci_hi: f64,
}

/// Pulls the next `"key": value` scalar out of `obj`. Good enough for
/// the machine-written baseline format; anything surprising is a parse
/// error, never a silent pass.
fn field<'a>(obj: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\"");
    let rest = &obj[obj.find(&needle)? + needle.len()..];
    let rest = rest.trim_start().strip_prefix(':')?.trim_start();
    let end = rest
        .char_indices()
        .find(|&(i, c)| {
            if rest.starts_with('"') {
                i > 0 && c == '"' && rest.as_bytes()[i - 1] != b'\\'
            } else {
                c == ',' || c == '}' || c == '\n'
            }
        })
        .map(|(i, _)| if rest.starts_with('"') { i + 1 } else { i })?;
    Some(rest[..end].trim())
}

fn string_field(obj: &str, key: &str) -> Result<String, String> {
    let raw = field(obj, key).ok_or_else(|| format!("missing \"{key}\""))?;
    raw.strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .map(str::to_owned)
        .ok_or_else(|| format!("\"{key}\" is not a string: {raw}"))
}

fn number_field(obj: &str, key: &str) -> Result<f64, String> {
    let raw = field(obj, key).ok_or_else(|| format!("missing \"{key}\""))?;
    raw.parse::<f64>().map_err(|_| format!("\"{key}\" is not a number: {raw}"))
}

/// Parses a `--export-baseline` file. Returns a descriptive error for
/// anything that is not a well-formed baseline (exit code 4 material).
pub fn parse_baseline(src: &str) -> Result<Vec<BaselineEntry>, String> {
    if !src.contains("\"baseline\"") {
        return Err("not a baseline export (no \"baseline\" tag)".to_owned());
    }
    let engine = src
        .find("\"engine\"")
        .and_then(|i| src[i..].find('[').map(|j| &src[i + j..]))
        .ok_or_else(|| "no \"engine\" entry array".to_owned())?;
    let mut entries = Vec::new();
    let mut rest = engine;
    while let Some(open) = rest.find('{') {
        let close = rest[open..].find('}').ok_or_else(|| "unterminated entry object".to_owned())?;
        let obj = &rest[open..open + close + 1];
        entries.push(BaselineEntry {
            scenario: string_field(obj, "scenario")?,
            scheduler: string_field(obj, "scheduler")?,
            events_per_sec: number_field(obj, "events_per_sec")?,
            ci_lo: number_field(obj, "events_per_sec_ci_lo")?,
            ci_hi: number_field(obj, "events_per_sec_ci_hi")?,
        });
        rest = &rest[open + close + 1..];
        // Stop at the end of the engine array; later sections (if any)
        // are not entries.
        if let Some(end) = rest.find(']') {
            if rest[..end].find('{').is_none() {
                break;
            }
        }
    }
    if entries.is_empty() {
        return Err("baseline has no engine entries".to_owned());
    }
    for e in &entries {
        if !(e.ci_lo.is_finite() && e.ci_hi.is_finite() && e.ci_lo <= e.ci_hi) {
            return Err(format!(
                "{}/{}: malformed CI [{}, {}]",
                e.scenario, e.scheduler, e.ci_lo, e.ci_hi
            ));
        }
    }
    Ok(entries)
}

/// Gates the current run against a recorded baseline. Returns one
/// message per regressed scenario (empty = gate passed). Scenarios in
/// the baseline but absent from the current run are regressions too —
/// a deleted benchmark must not silently pass its gate. New scenarios
/// with no recorded baseline pass (the next `--export-baseline` picks
/// them up).
pub fn compare(
    current: &[EngineBaseline],
    baseline: &[BaselineEntry],
    max_drop: f64,
) -> Vec<String> {
    let mut failures = Vec::new();
    for b in baseline {
        let floor = b.ci_lo * (1.0 - max_drop);
        match current.iter().find(|c| c.scenario == b.scenario && c.scheduler == b.scheduler) {
            None => failures.push(format!(
                "{}/{}: in baseline but not measured by this run",
                b.scenario, b.scheduler
            )),
            Some(c) if c.ci_hi < floor => failures.push(format!(
                "{}/{}: regressed — current CI [{:.3e}, {:.3e}] ev/s is entirely below \
                 baseline lower bound {:.3e} x (1 - {max_drop}) = {:.3e}",
                b.scenario, b.scheduler, c.ci_lo, c.ci_hi, b.ci_lo, floor
            )),
            Some(_) => {}
        }
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(scenario: &str, scheduler: &'static str, lo: f64, hi: f64) -> EngineBaseline {
        EngineBaseline {
            scenario: scenario.to_owned(),
            scheduler,
            events_per_sec: (lo + hi) / 2.0,
            ci_lo: lo,
            ci_hi: hi,
            fused_speedup: 1.0,
        }
    }

    fn sample_export() -> String {
        r#"{
  "baseline": "simnet-engine",
  "quick": false,
  "bootstrap_resamples": 200,
  "engine": [
    {
      "scenario": "forward-2stage",
      "scheduler": "wheel",
      "events_per_sec": 2.0e7,
      "events_per_sec_ci_lo": 1.9e7,
      "events_per_sec_ci_hi": 2.1e7,
      "fused_speedup": 1.4
    },
    {
      "scenario": "batch-gpu",
      "scheduler": "heap",
      "events_per_sec": 5.0e6,
      "events_per_sec_ci_lo": 4.8e6,
      "events_per_sec_ci_hi": 5.2e6,
      "fused_speedup": 1.0
    }
  ]
}"#
        .to_owned()
    }

    #[test]
    fn parses_the_export_format_roundtrip() {
        let entries = parse_baseline(&sample_export()).expect("parses");
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].scenario, "forward-2stage");
        assert_eq!(entries[0].scheduler, "wheel");
        assert!((entries[0].ci_lo - 1.9e7).abs() < 1.0);
        assert_eq!(entries[1].scenario, "batch-gpu");
    }

    #[test]
    fn rejects_malformed_baselines() {
        assert!(parse_baseline("{}").is_err(), "no baseline tag");
        assert!(parse_baseline(r#"{"baseline": "simnet-engine"}"#).is_err(), "no engine array");
        assert!(
            parse_baseline(
                r#"{"baseline": "x", "engine": [{"scenario": "a", "scheduler": "wheel"}]}"#
            )
            .is_err(),
            "entry missing numbers"
        );
    }

    #[test]
    fn overlapping_intervals_pass_the_gate() {
        let base = parse_baseline(&sample_export()).expect("parses");
        // Slightly slower but CI still overlaps the shrunk baseline.
        let current = vec![
            entry("forward-2stage", "wheel", 1.7e7, 1.8e7),
            entry("batch-gpu", "heap", 4.5e6, 4.9e6),
        ];
        assert!(compare(&current, &base, DEFAULT_MAX_DROP).is_empty());
    }

    #[test]
    fn clear_regressions_fail_the_gate() {
        let base = parse_baseline(&sample_export()).expect("parses");
        // Half the recorded throughput: no overlap at any reasonable drop.
        let current = vec![
            entry("forward-2stage", "wheel", 0.9e7, 1.0e7),
            entry("batch-gpu", "heap", 4.8e6, 5.2e6),
        ];
        let failures = compare(&current, &base, DEFAULT_MAX_DROP);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("forward-2stage/wheel"));
    }

    #[test]
    fn missing_scenarios_count_as_regressions() {
        let base = parse_baseline(&sample_export()).expect("parses");
        let current = vec![entry("forward-2stage", "wheel", 1.9e7, 2.1e7)];
        let failures = compare(&current, &base, DEFAULT_MAX_DROP);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("batch-gpu/heap"));
        assert!(failures[0].contains("not measured"));
    }

    #[test]
    fn new_scenarios_without_a_baseline_pass() {
        let base = parse_baseline(&sample_export()).expect("parses");
        let current = vec![
            entry("forward-2stage", "wheel", 1.9e7, 2.1e7),
            entry("batch-gpu", "heap", 4.8e6, 5.2e6),
            entry("brand-new", "wheel", 1.0, 2.0),
        ];
        assert!(compare(&current, &base, DEFAULT_MAX_DROP).is_empty());
    }
}
