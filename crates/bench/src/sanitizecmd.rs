//! `xp sanitize`: run one worked-example scenario with the runtime
//! order sanitizer shadowing the dispatch walk, and gate on the
//! byte-identity contract.
//!
//! Three runs of the same `(scenario, scheduler, seed, severity)`
//! configuration are compared in-process:
//!
//! 1. a plain run (the reference bytes),
//! 2. a **check-only** sanitized run (monotone time, globally unique
//!    `seq`, ascending merged dispatch order, stage bounds), and
//! 3. a **perturbed** sanitized run: every same-timestamp equivalence
//!    class is shuffled with a seeded Fisher–Yates pass and restored by
//!    the seq-keyed merge — the epoch-barrier discipline a sharded
//!    engine will use.
//!
//! All three must produce byte-identical measurements; any divergence
//! (or any invariant assertion inside the engine) is a hard failure.
//! This is the dynamic half of the shard-safety analyzer: `xp lint`
//! proves the sources of nondeterminism are absent from the code, `xp
//! sanitize` proves the ordering contract holds on a live schedule.

use crate::scenarios::{faulted, perturbed_workload, to_gbps};
use apples_simnet::sched::SchedulerKind;
use apples_simnet::system::{Deployment, Measurement};
use apples_simnet::SanitizerReport;

const RUN_NS: u64 = 20_000_000;
const WARMUP_NS: u64 = 2_000_000;
const SANITIZE_GBPS: f64 = 12.0;

/// Options for one `xp sanitize` invocation.
#[derive(Debug, Clone)]
pub struct SanitizeOptions {
    /// Scenario id (see [`crate::tracecmd::scenario_ids`]).
    pub scenario: String,
    /// Event-queue discipline for all three runs.
    pub scheduler: SchedulerKind,
    /// Fault severity in `[0, 1]` (0 = fault-free).
    pub severity: f64,
    /// Workload seed.
    pub seed: u64,
    /// Seed for the interleaving perturber.
    pub perturb_seed: u64,
    /// Shard count for the checked and perturbed runs: the plain run
    /// always stays serial, so shards > 1 gates the sharded engine
    /// directly against the serial oracle's bytes.
    pub shards: usize,
}

impl Default for SanitizeOptions {
    fn default() -> Self {
        SanitizeOptions {
            scenario: "smartnic".to_owned(),
            scheduler: SchedulerKind::Wheel,
            severity: 0.0,
            seed: 1,
            perturb_seed: 0xD15F,
            shards: 1,
        }
    }
}

/// One sanitized comparison's outcome.
#[derive(Debug)]
pub struct SanitizeOutput {
    /// Human-readable summary (printed by the CLI).
    pub summary: String,
    /// Whether all three runs matched byte for byte.
    pub identical: bool,
    /// The perturbed run's sanitizer report.
    pub report: SanitizerReport,
}

/// Scenario ids `xp sanitize` accepts: the trace trio plus the two
/// declared-steer fan-outs the shard planner can split.
pub fn sanitize_scenario_ids() -> [&'static str; 5] {
    ["base-2c", "smartnic", "switch-2c", "cluster", "rss"]
}

fn build(scenario: &str) -> Option<Deployment> {
    use crate::scenarios::{baseline_host, firewall_chain, smartnic_system, switch_system};
    match scenario {
        "base-2c" => Some(baseline_host(2)),
        "smartnic" => Some(smartnic_system()),
        "switch-2c" => Some(switch_system(2)),
        "cluster" => Some(Deployment::replicated_cluster("cluster", 4, 2, 0.1, firewall_chain)),
        "rss" => Some(Deployment::cpu_host_rss("rss", 4, firewall_chain)),
        _ => None,
    }
}

fn digest(m: &Measurement) -> (u64, u64, u64, u64, u64, u64) {
    (
        m.throughput_bps.to_bits(),
        m.mean_latency_ns.to_bits(),
        m.p99_latency_ns.to_bits(),
        m.policy_drops,
        m.fault_drops,
        m.watts.to_bits(),
    )
}

/// Runs the three-way comparison. Returns `None` for an unknown
/// scenario id.
pub fn run_sanitize(opts: &SanitizeOptions) -> Option<SanitizeOutput> {
    let wl = perturbed_workload(SANITIZE_GBPS, opts.seed, opts.severity);
    let plain = faulted(build(&opts.scenario)?, opts.severity)
        .with_scheduler(opts.scheduler)
        .run(&wl, RUN_NS, WARMUP_NS);
    let (checked, check_report) = faulted(build(&opts.scenario)?, opts.severity)
        .with_scheduler(opts.scheduler)
        .with_shards(opts.shards)
        .run_sanitized(&wl, RUN_NS, WARMUP_NS, None);
    let (perturbed, report) = faulted(build(&opts.scenario)?, opts.severity)
        .with_scheduler(opts.scheduler)
        .with_shards(opts.shards)
        .run_sanitized(&wl, RUN_NS, WARMUP_NS, Some(opts.perturb_seed));

    let identical = digest(&plain) == digest(&checked) && digest(&plain) == digest(&perturbed);
    let scheduler = match opts.scheduler {
        SchedulerKind::Wheel => "wheel",
        SchedulerKind::Heap => "heap",
    };
    let mut out = String::new();
    out.push_str(&format!(
        "sanitize: {} (scheduler {}, severity {}, seed {}, perturb-seed {:#x}, shards {})\n",
        opts.scenario, scheduler, opts.severity, opts.seed, opts.perturb_seed, opts.shards
    ));
    out.push_str(&format!(
        "  checked: {} events in {} buckets (max same-time class {})\n",
        report.events, report.buckets, report.max_bucket
    ));
    out.push_str(&format!(
        "  perturbed: {} events shuffled and re-merged by seq\n",
        report.perturbed
    ));
    out.push_str(&format!(
        "  throughput: {:.3} Gbps (plain) / {:.3} Gbps (perturbed)\n",
        to_gbps(plain.throughput_bps),
        to_gbps(perturbed.throughput_bps)
    ));
    out.push_str(if identical {
        "  verdict: byte-identical under check + perturbation\n"
    } else {
        "  verdict: DIVERGED — ordering contract violated\n"
    });
    debug_assert_eq!(check_report.perturbed, 0);
    Some(SanitizeOutput { summary: out, identical, report })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_scenario_is_none() {
        let opts = SanitizeOptions { scenario: "nope".to_owned(), ..SanitizeOptions::default() };
        assert!(run_sanitize(&opts).is_none());
    }

    #[test]
    fn smartnic_sanitizes_identically_under_both_schedulers() {
        for scheduler in [SchedulerKind::Wheel, SchedulerKind::Heap] {
            let opts = SanitizeOptions { scheduler, ..SanitizeOptions::default() };
            let out = run_sanitize(&opts).expect("known scenario");
            assert!(out.identical, "{}", out.summary);
            assert!(out.report.events > 0);
            assert!(out.summary.contains("byte-identical"));
        }
    }

    #[test]
    fn sharded_cluster_sanitizes_identically_against_the_serial_oracle() {
        // The plain run stays serial, so this is a live serial-vs-shard
        // byte gate with the perturber shuffling on every shard.
        for shards in [2, 4] {
            let opts = SanitizeOptions {
                scenario: "cluster".to_owned(),
                shards,
                ..SanitizeOptions::default()
            };
            let out = run_sanitize(&opts).expect("known scenario");
            assert!(out.identical, "{}", out.summary);
            assert!(out.report.events > 0);
            assert!(out.summary.contains(&format!("shards {shards}")));
        }
    }

    #[test]
    fn rss_scenario_builds_and_sanitizes() {
        let opts =
            SanitizeOptions { scenario: "rss".to_owned(), shards: 2, ..SanitizeOptions::default() };
        let out = run_sanitize(&opts).expect("known scenario");
        assert!(out.identical, "{}", out.summary);
    }

    #[test]
    fn faulted_base_sanitizes_identically() {
        let opts = SanitizeOptions {
            scenario: "base-2c".to_owned(),
            severity: 0.5,
            ..SanitizeOptions::default()
        };
        let out = run_sanitize(&opts).expect("known scenario");
        assert!(out.identical, "{}", out.summary);
    }
}
