//! The one sanctioned wall-clock in the workspace.
//!
//! Everything simulated is deterministic and must never read host time
//! (lint rule D2). The single legitimate use is the micro-benchmark
//! timing its own harness — and that goes through this helper, so D2
//! is enforced with exactly one suppression instead of a file-wide
//! exemption.

use std::time::Instant;

/// A started wall-clock measurement.
///
/// ```
/// let clock = apples_bench::wallclock::WallClock::start();
/// let _elapsed = clock.elapsed_ms();
/// ```
#[derive(Debug, Clone, Copy)]
pub struct WallClock {
    start: Instant,
}

impl WallClock {
    /// Starts a measurement.
    pub fn start() -> Self {
        // lint: allow(D2, reason = "the micro-benchmark's sanctioned wall-clock read; simulated time never flows through here")
        WallClock { start: Instant::now() }
    }

    /// Milliseconds of wall time since [`WallClock::start`].
    pub fn elapsed_ms(&self) -> f64 {
        self.start.elapsed().as_secs_f64() * 1e3
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elapsed_is_monotone_nonnegative() {
        let clock = WallClock::start();
        let a = clock.elapsed_ms();
        let b = clock.elapsed_ms();
        assert!(a >= 0.0);
        assert!(b >= a);
    }
}
