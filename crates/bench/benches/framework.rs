//! Criterion benches for the methodology engine's hot paths.

use apples_core::scaling::{Amdahl, IdealLinear, ScalingModel};
use apples_core::{pareto_frontier, relate, Evaluation, OperatingPoint, System};
use apples_metrics::cost::DeviceClass;
use apples_metrics::perf::PerfMetric;
use apples_metrics::quantity::{gbps, watts};
use apples_metrics::CostMetric;
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn tp(g: f64, w: f64) -> OperatingPoint {
    OperatingPoint::new(
        PerfMetric::throughput_bps().value(gbps(g)),
        CostMetric::power_draw().value(watts(w)),
    )
}

fn point_cloud(n: usize) -> Vec<OperatingPoint> {
    let mut pts = Vec::with_capacity(n);
    let mut state = 0x2545F4914F6CDD1D_u64;
    for _ in 0..n {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let g = 1.0 + (state >> 40) as f64 / 1e4;
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let w = 10.0 + (state >> 40) as f64 / 1e3;
        pts.push(tp(g, w));
    }
    pts
}

fn bench_relate(c: &mut Criterion) {
    let a = tp(20.0, 70.0);
    let b = tp(10.0, 50.0);
    c.bench_function("relate/pair", |bench| bench.iter(|| relate(black_box(&a), black_box(&b))));
}

fn bench_frontier(c: &mut Criterion) {
    let mut g = c.benchmark_group("pareto_frontier");
    for n in [100usize, 1_000, 10_000] {
        let pts = point_cloud(n);
        g.bench_function(format!("n={n}"), |bench| {
            bench.iter(|| pareto_frontier(black_box(&pts)))
        });
    }
    g.finish();
}

fn bench_scaling_solvers(c: &mut Criterion) {
    let base = tp(10.0, 50.0);
    let target = tp(87.3, 500.0);
    c.bench_function("scaling/ideal_match_perf", |bench| {
        bench.iter(|| IdealLinear.scale_to_match_perf(black_box(&base), black_box(&target)))
    });
    let amdahl = Amdahl::new(0.05);
    c.bench_function("scaling/amdahl_match_perf", |bench| {
        bench.iter(|| amdahl.scale_to_match_perf(black_box(&base), black_box(&target)))
    });
}

fn bench_evaluation(c: &mut Criterion) {
    c.bench_function("evaluation/full_pipeline", |bench| {
        bench.iter(|| {
            Evaluation::new(
                System::new(
                    "p",
                    vec![DeviceClass::Cpu, DeviceClass::ProgrammableSwitch],
                    tp(100.0, 200.0),
                ),
                System::new("b", vec![DeviceClass::Cpu, DeviceClass::Nic], tp(35.0, 100.0)),
            )
            .with_baseline_scaling(&IdealLinear)
            .run()
        })
    });
}

criterion_group!(benches, bench_relate, bench_frontier, bench_scaling_solvers, bench_evaluation);
criterion_main!(benches);
