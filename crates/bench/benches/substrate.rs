//! Criterion benches for the simulation substrate's hot paths.

use apples_simnet::engine::{Engine, StageConfig};
use apples_simnet::nf::dpi::{AhoCorasick, Dpi};
use apples_simnet::nf::firewall::{synth_rules, Action, BucketedFirewall, Firewall};
use apples_simnet::nf::monitor::CountMinSketch;
use apples_simnet::nf::{NetworkFunction, NfChain};
use apples_simnet::packet::Packet;
use apples_simnet::service::NfService;
use apples_workload::{FiveTuple, WorkloadSpec};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn pkt(src_ip: u32, dst_port: u16) -> Packet {
    Packet::new(
        1,
        0,
        FiveTuple { src_ip, dst_ip: 0xC0A80001, src_port: 40000, dst_port, proto: 6 },
        1500,
        0,
    )
}

fn bench_firewall_matchers(c: &mut Criterion) {
    let rules = synth_rules(1000, 0.9, 42);
    let mut linear = Firewall::new(rules.clone(), Action::Deny);
    let mut bucketed = BucketedFirewall::new(rules, Action::Deny);
    let p = pkt(0x0A123456, 443);
    let mut g = c.benchmark_group("firewall_1000_rules");
    g.bench_function("linear", |b| b.iter(|| linear.process(black_box(&p))));
    g.bench_function("bucketed", |b| b.iter(|| bucketed.process(black_box(&p))));
    g.finish();
}

fn bench_aho_corasick(c: &mut Criterion) {
    let sigs = Dpi::demo_signatures();
    let ac = AhoCorasick::build(&sigs);
    let haystack: Vec<u8> = (0..1400u32).map(|i| b'a' + (i % 26) as u8).collect();
    c.bench_function("dpi/ac_scan_1400B", |b| b.iter(|| ac.count_matches(black_box(&haystack))));
}

fn bench_count_min(c: &mut Criterion) {
    let mut s = CountMinSketch::new(4, 4096);
    let mut key = 0u64;
    c.bench_function("monitor/cms_update", |b| {
        b.iter(|| {
            key = key.wrapping_add(0x9E3779B97F4A7C15);
            s.add(black_box(key), 1500);
        })
    });
}

fn bench_lpm(c: &mut Criterion) {
    use apples_simnet::nf::router::{synth_routes, LinearRouter, LpmTrie};
    let routes = synth_routes(10_000, true, 7);
    let trie = LpmTrie::new(&routes);
    let linear = LinearRouter::new(&routes);
    let mut g = c.benchmark_group("lpm_10k_routes");
    g.bench_function("trie", |b| b.iter(|| trie.lookup(black_box(0x0A123456))));
    g.bench_function("linear", |b| b.iter(|| linear.lookup(black_box(0x0A123456))));
    g.finish();
}

fn bench_policer(c: &mut Criterion) {
    use apples_simnet::nf::policer::TokenBucket;
    let mut tb = TokenBucket::new(10e9, 1_000_000.0);
    let mut t = 0u64;
    c.bench_function("policer/decision", |b| {
        b.iter(|| {
            t += 100;
            tb.police(black_box(t), 1520.0)
        })
    });
}

fn bench_batch_engine(c: &mut Criterion) {
    use apples_simnet::engine::BatchPolicy;
    use apples_simnet::service::FixedTime;
    c.bench_function("engine/batched_1ms_at_2Mpps", |b| {
        b.iter(|| {
            let mut engine = Engine::new(vec![StageConfig::new(
                "gpu",
                2,
                4096,
                Box::new(FixedTime::new("kernel", NfChain::empty(), 30)),
            )
            .with_batching(BatchPolicy::new(128, 100_000, 15_000))]);
            let wl = WorkloadSpec::cbr(2e6, 1500, 64, 5);
            engine.run(&wl, 1_000_000, 0)
        })
    });
}

fn bench_workload_gen(c: &mut Criterion) {
    let spec = WorkloadSpec::cbr(10e6, 64, 256, 3);
    c.bench_function("workload/generate_10k_packets", |b| {
        b.iter(|| {
            let stream = spec.stream();
            stream.take(10_000).count()
        })
    });
}

fn bench_engine(c: &mut Criterion) {
    c.bench_function("engine/1ms_at_1Mpps", |b| {
        b.iter(|| {
            let mut engine = Engine::new(vec![StageConfig::new("core", 2, 1024, Box::new(NfService::host_core(NfChain::new(vec![Box::new(
                    Firewall::new(synth_rules(100, 0.9, 7), Action::Deny),
                )
                    as Box<dyn NetworkFunction>]))))]);
            let wl = WorkloadSpec::cbr(1e6, 1500, 64, 5);
            engine.run(&wl, 1_000_000, 0)
        })
    });
}

criterion_group!(
    benches,
    bench_firewall_matchers,
    bench_aho_corasick,
    bench_count_min,
    bench_lpm,
    bench_policer,
    bench_batch_engine,
    bench_workload_gen,
    bench_engine
);
criterion_main!(benches);
