//! One Criterion bench per paper table/figure/example: regenerating each
//! artifact end-to-end. Sample counts are small — each iteration runs
//! real simulations.

use apples_bench::experiments::{run, ALL_IDS};
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn bench_experiments(c: &mut Criterion) {
    let mut g = c.benchmark_group("experiments");
    g.sample_size(10)
        .warm_up_time(Duration::from_secs(1))
        .measurement_time(Duration::from_secs(10));
    for id in ALL_IDS {
        g.bench_function(id, |b| {
            b.iter(|| run(id).expect("known experiment"));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_experiments);
criterion_main!(benches);
