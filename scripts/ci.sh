#!/usr/bin/env bash
# CI for the hermetic workspace: everything runs --offline; a network
# fetch (i.e. any external dependency creeping back in) is a failure.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== fmt =="
cargo fmt --all -- --check

echo "== clippy =="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== tier-1: release build =="
cargo build --release --offline

echo "== tier-1: tests (count-floored) =="
# The full workspace suite includes the golden-report fixtures
# (tests/golden/) and the determinism-under-faults suite; both gate
# here. The passed-test count is compared against a checked-in floor
# so a suite cannot silently shrink or stop being discovered.
mkdir -p target
cargo test -q --workspace --offline | tee target/test-output.txt
passed=$(grep -Eo '[0-9]+ passed' target/test-output.txt | awk '{s += $1} END {print s + 0}')
floor=$(grep -Eo '^[0-9]+' reports/test_floor.txt | head -n1)
echo "tests passed: ${passed} (floor: ${floor})"
if [ "${passed}" -lt "${floor}" ]; then
  echo "test count ${passed} fell below the floor ${floor} (reports/test_floor.txt)" >&2
  exit 1
fi

echo "== lint =="
# The in-repo analyzer (DESIGN.md §8, §11): exits 1 on any deny finding
# not grandfathered by the fingerprint baseline. The JSON output is then
# spot-checked against the published schema (reports/lint-schema.json):
# schema_version 2 with per-finding reformat-stable fingerprints.
cargo run -q --release --offline -p apples-bench --bin xp -- \
  lint --json --baseline reports/lint_baseline.json | tee target/lint.json
for key in '"schema_version": 2' '"legacy"' '"deny"' '"warn"' '"suppressed"' '"findings"'; do
  if ! grep -q "${key}" target/lint.json; then
    echo "lint --json output is missing ${key} (see reports/lint-schema.json)" >&2
    exit 1
  fi
done
# Per-finding keys (fingerprint, legacy flag) only show up when there
# ARE findings, so check them against the known-bad fixture tree (which
# exits 1 by design — that exit is the fixture working, not a failure).
cargo run -q --release --offline -p apples-bench --bin xp -- \
  lint --json --root crates/lint/tests/fixtures/bad_workspace \
  > target/lint-fixture.json || true
for key in '"fingerprint"' '"legacy": false' '"rule"' '"severity"' '"snippet"'; do
  if ! grep -q "${key}" target/lint-fixture.json; then
    echo "fixture lint --json output is missing ${key} (see reports/lint-schema.json)" >&2
    exit 1
  fi
done

echo "== sanitizer: order invariants + perturbed byte-identity =="
# The dynamic half of the shard-safety analyzer (DESIGN.md §11): each
# worked-example scenario runs plain, order-checked, and with the
# seeded interleaving perturber shuffling every same-timestamp
# equivalence class; any byte divergence or invariant trip exits 1.
# Schedulers alternate so both disciplines stay under the sanitizer.
cargo run -q --release --offline -p apples-bench --bin xp -- \
  sanitize base-2c --scheduler wheel
cargo run -q --release --offline -p apples-bench --bin xp -- \
  sanitize smartnic --scheduler heap --severity 0.5
cargo run -q --release --offline -p apples-bench --bin xp -- \
  sanitize switch-2c --scheduler wheel --perturb-seed 7

echo "== shards: epoch-barrier runs are byte-identical to serial =="
# The sharded engine's identity gate (DESIGN.md §12): three shardable
# scenarios run at shard counts 1, 2, and 4; the plain run inside each
# sanitize invocation stays serial, so every invocation is a live
# serial-vs-sharded byte comparison (exit 1 on any divergence). The
# perturber is armed on every run, so the cluster x4 case doubles as the
# required sanitizer-perturbation-on-a-sharded-run check. Scaling
# efficiency itself is measured by the bench stage below and lands in
# BENCH_simnet.json under "single_run_scaling".
for n in 1 2 4; do
  cargo run -q --release --offline -p apples-bench --bin xp -- \
    sanitize cluster --shards "${n}" --severity 0.3
  cargo run -q --release --offline -p apples-bench --bin xp -- \
    sanitize rss --shards "${n}" --scheduler heap
  cargo run -q --release --offline -p apples-bench --bin xp -- \
    sanitize smartnic --shards "${n}" --perturb-seed 7
done

echo "== store: incremental experiment cache =="
# The content-addressed experiment store (DESIGN.md §13): a cold run
# populates target/store-ci, a warm run must be 100% hits (0 stale, 0
# miss, 0 torn) with byte-identical stdout, --no-cache must reproduce
# the same bytes while bypassing the store, flipping one fault-spec
# severity rung (via the sanctioned override) must re-run exactly that
# experiment's subtree, and `xp gc` must reap exactly the four
# override-keyed orphans it left behind.
rm -rf target/store-ci
XP=(cargo run -q --release --offline -p apples-bench --bin xp --)
"${XP[@]}" --store-dir target/store-ci --explain all \
  > target/store-cold.txt 2> target/store-cold-explain.txt
grep -q "re-ran 27/27 experiments" target/store-cold-explain.txt
"${XP[@]}" --store-dir target/store-ci --explain all \
  > target/store-warm.txt 2> target/store-warm-explain.txt
grep -q "0 stale, 0 miss, 0 torn" target/store-warm-explain.txt
grep -q "re-ran 0/27 experiments" target/store-warm-explain.txt
cmp target/store-cold.txt target/store-warm.txt
"${XP[@]}" --store-dir target/store-ci --no-cache all > target/store-fresh.txt
cmp target/store-cold.txt target/store-fresh.txt
APPLES_SEVERITY_OVERRIDE="robustness-verdict:moderate=0.55" \
  "${XP[@]}" --store-dir target/store-ci --explain all \
  > /dev/null 2> target/store-flip-explain.txt
grep -q "re-ran 1/27 experiments" target/store-flip-explain.txt
grep -q "stale run/robustness-verdict" target/store-flip-explain.txt
if grep "stale run/" target/store-flip-explain.txt | grep -qv "robustness-verdict"; then
  echo "severity flip dirtied an unrelated experiment subtree:" >&2
  grep "stale run/" target/store-flip-explain.txt >&2
  exit 1
fi
"${XP[@]}" --store-dir target/store-ci --explain all \
  > /dev/null 2> target/store-warm2-explain.txt
grep -q "re-ran 0/27 experiments" target/store-warm2-explain.txt
"${XP[@]}" gc --store-dir target/store-ci | tail -n 1 | tee target/store-gc.txt
grep -q "removed 4" target/store-gc.txt
"${XP[@]}" --store-dir target/store-ci --explain all \
  > /dev/null 2> target/store-warm3-explain.txt
grep -q "re-ran 0/27 experiments" target/store-warm3-explain.txt

echo "== perf sanity: scheduler + harness identity, relative baseline =="
# Quick micro-benchmark gated against the *measured* baseline
# (reports/baseline.json, recorded via --export-baseline): fails if the
# wheel/heap, fused/unfused, or serial/parallel identity checks break,
# if any scenario's CI falls below the recorded CI lower bound shrunk
# by its resolved max_drop (per-entry override > --max-drop > file
# defaults > built-in 0.15; the checked-in file ships 0.30 for shared
# runners), if forward-2stage/wheel drops under its absolute min_floor,
# or if any fused_speedup lands below 0.85.
cargo run -q --release --offline -p apples-bench --bin xp -- \
  bench --quick --out target/bench-quick.json \
  --baseline reports/baseline.json --strict \
  > /dev/null
# The post-rearchitecture identity sweep: all golden reports and the
# golden trace fixture must be byte-identical to the checked-in files
# (they run inside the tier-1 suite too; re-running them here makes the
# perf stage self-contained against a stale tier-1 skip).
cargo test -q --release --offline --test golden_reports | tail -n 2
cargo test -q --release --offline --test observability golden | tail -n 2

echo "== robustness: fault injection stays deterministic =="
# Re-runs the bench identity gate with the fault layer armed: every
# severity's serial/parallel and replay digests must agree bit-for-bit
# (the robustness section folds into identical_results, which the
# --baseline gate requires to be true). DESIGN.md §7 has the contract.
cargo run -q --release --offline -p apples-bench --bin xp -- \
  bench --quick --faults --out target/bench-faults.json \
  --baseline reports/baseline.json --strict \
  > /dev/null

echo "== observability: trace determinism + overhead ceiling =="
# A traced run is a pure function of (seed, spec): the same scenario
# exported twice — once per scheduler — must produce byte-identical
# Chrome trace files. Note: APPLES_TOOLCHAIN / APPLES_GIT_REV are left
# unset here on purpose; golden fixtures bake in the "unrecorded"
# fallback, and stamping real values is an opt-in for humans.
cargo run -q --release --offline -p apples-bench --bin xp -- \
  trace smartnic --severity 0.5 --ring 4096 --scheduler wheel \
  --out target/trace-wheel.json > /dev/null
cargo run -q --release --offline -p apples-bench --bin xp -- \
  trace smartnic --severity 0.5 --ring 4096 --scheduler heap \
  --out target/trace-heap.json > /dev/null
if ! cmp -s target/trace-wheel.json target/trace-heap.json; then
  echo "trace files differ across schedulers: tracing leaked schedule state" >&2
  exit 1
fi
# Flamegraph export smoke: a sharded diagnosed run must exit 0 (its
# measurement byte-identical to the unobserved reference) and emit
# well-formed folded stacks — every line `frames... <integer>`, with
# both the engine-phase and per-shard lane roots present.
cargo run -q --release --offline -p apples-bench --bin xp -- \
  profile cluster --shards 2 --out target/prof.folded > /dev/null
if [ ! -s target/prof.folded ]; then
  echo "xp profile emitted an empty folded-stack file" >&2
  exit 1
fi
if grep -qvE '^[^ ]+ [0-9]+$' target/prof.folded; then
  echo "malformed folded-stack lines in target/prof.folded:" >&2
  grep -vE '^[^ ]+ [0-9]+$' target/prof.folded >&2
  exit 1
fi
grep -q '^engine;dispatch ' target/prof.folded
grep -q '^shards;shard-1;barrier-wait ' target/prof.folded
# The diagnosis set's "cheap enough to leave on" budget (span profiler
# + sim-time metrics ring): the full bench already ran above; re-gate
# the quick bench with the obs ceiling so a hook-path regression fails
# CI (<5%, reports/obs_overhead.txt).
cargo run -q --release --offline -p apples-bench --bin xp -- \
  bench --quick --out target/bench-obs.json --check-obs reports/obs_overhead.txt \
  > /dev/null

echo "== dependency hygiene: workspace members only =="
if cargo tree --offline -e normal --prefix none | grep -v '^apples' | grep -q '[^[:space:]]'; then
  echo "external crates found in cargo tree:" >&2
  cargo tree --offline -e normal --prefix none | grep -v '^apples' >&2
  exit 1
fi

echo "CI OK"
