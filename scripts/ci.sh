#!/usr/bin/env bash
# CI for the hermetic workspace: everything runs --offline; a network
# fetch (i.e. any external dependency creeping back in) is a failure.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== fmt =="
cargo fmt --all -- --check

echo "== clippy =="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== tier-1: release build =="
cargo build --release --offline

echo "== tier-1: tests =="
cargo test -q --workspace --offline

echo "== lint =="
# The in-repo analyzer (DESIGN.md §7): exits 1 on any deny finding.
cargo run -q --release --offline -p apples-bench --bin xp -- lint --json

echo "== perf sanity: scheduler + harness identity, events/s floor =="
# Quick micro-benchmark: fails if the wheel/heap or serial/parallel
# identity checks break, or if forward-2stage events/s falls >30% below
# the checked-in floor (reports/bench_floor.txt).
mkdir -p target
cargo run -q --release --offline -p apples-bench --bin xp -- \
  bench --quick --out target/bench-quick.json --check-floor reports/bench_floor.txt \
  > /dev/null

echo "== dependency hygiene: workspace members only =="
if cargo tree --offline -e normal --prefix none | grep -v '^apples' | grep -q '[^[:space:]]'; then
  echo "external crates found in cargo tree:" >&2
  cargo tree --offline -e normal --prefix none | grep -v '^apples' >&2
  exit 1
fi

echo "CI OK"
